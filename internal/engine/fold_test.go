package engine

import (
	"fmt"
	"math"
	"testing"

	"taco/internal/formula"
	"taco/internal/ref"
)

// TestFoldRangeMatchesScan cross-checks the batched column fold against the
// streaming scan it replaces, accumulator by accumulator, on the shared
// range fixture — including windows that start and end mid-slab, the
// unrolled block's tail, and columns mixing numbers, text, bools, blanks,
// and errors.
func TestFoldRangeMatchesScan(t *testing.T) {
	e := rangeFixture(t)
	// An explicit stored blank and a NaN-valued cell: both fold corner cases
	// (blanks count nowhere; NaN must obey the strict-comparison extrema).
	e.SetValue(ref.MustCell("B25"), formula.Empty())
	e.SetValue(ref.MustCell("C9"), formula.Num(math.NaN()))
	e.RecalculateAll()
	for _, rs := range []string{
		"B1:B50", "B2:B49", "B7:B7", "B45:B60", "C1:C50", "C1:C60",
		"D1:D60", "E1:E40", "E6:E40", "F1:F60", "B51:B90",
		// Multi-column rectangles: the cursor min-scan must reproduce the
		// heap merge's row-major order exactly (first error, float order).
		"B1:C50", "B1:F60", "C5:E45", "A1:H90",
	} {
		rng := ref.MustRange(rs)
		fold, ok := e.store.foldRange(rng, nil)
		if !ok {
			t.Fatalf("%s: fold refused", rs)
		}
		// Reference accumulation via the streaming scan, in the same order
		// with the same comparison semantics.
		want := formula.NumericFold{Min: math.Inf(1), Max: math.Inf(-1)}
		e.store.scanRange(rng, func(_ ref.Ref, c *cell) bool {
			v := c.value
			switch v.Kind {
			case formula.KindNumber:
				want.Sum += v.Num
				want.Count++
				want.NonEmpty++
				if v.Num < want.Min {
					want.Min = v.Num
				}
				if v.Num > want.Max {
					want.Max = v.Num
				}
			case formula.KindEmpty:
			case formula.KindError:
				want.NonEmpty++
				if !want.Err.IsError() {
					want.Err = v
				}
			default:
				want.NonEmpty++
			}
			return true
		})
		if fold.Count != want.Count || fold.NonEmpty != want.NonEmpty ||
			fold.Err != want.Err || fold.Sum != want.Sum && !(math.IsNaN(fold.Sum) && math.IsNaN(want.Sum)) {
			t.Errorf("%s: fold %+v, scan %+v", rs, fold, want)
		}
		if fold.Count > 0 && (fold.Min != want.Min || fold.Max != want.Max) {
			t.Errorf("%s: fold extrema (%v,%v), scan (%v,%v)", rs, fold.Min, fold.Max, want.Min, want.Max)
		}
	}
	// Rectangles wider than the cursor-merge limit decline the fold — their
	// row-major order stays the heap merge's job.
	wide := ref.Range{Head: ref.MustCell("A1"), Tail: ref.Ref{Col: maxFoldCols + 1, Row: 50}}
	if _, ok := e.store.foldRange(wide, nil); ok {
		t.Fatal("over-wide fold did not decline")
	}
}

// TestFoldEvaluatesDirtyCells: the recalculation-path fold must evaluate
// dirty cells it passes over (and surface in-flight cycles as #CYCLE!),
// exactly like the streaming evalResolver.
func TestFoldEvaluatesDirtyCells(t *testing.T) {
	e := New(nil)
	e.SetValue(ref.MustCell("A1"), formula.Num(2))
	for i := 1; i <= 20; i++ {
		mustFormula(t, e, fmt.Sprintf("B%d", i), fmt.Sprintf("A1*%d", i))
	}
	mustFormula(t, e, "C1", "SUM(B1:B20)")
	e.RecalculateAll()
	e.SetValue(ref.MustCell("A1"), formula.Num(3)) // dirties the B column + C1
	// Evaluating only C1 must pull every dirty B through the fold.
	e.evaluate(ref.MustCell("C1"), e.cells[ref.MustCell("C1")])
	if v := e.Value(ref.MustCell("C1")); v.Num != 3*210 {
		t.Fatalf("C1 = %v, want %v", v, 3*210)
	}
	for i := 1; i <= 20; i++ {
		if e.Dirty(ref.Ref{Col: 2, Row: i}) {
			t.Fatalf("B%d left dirty by the fold", i)
		}
	}
}

// perCellResolver exposes only CellValue — no bulk scan, no folds — so
// evaluating against it is the exact per-cell oracle for the fold paths.
type perCellResolver struct{ e *Engine }

func (r perCellResolver) CellValue(at ref.Ref) formula.Value { return r.e.Value(at) }

// TestCondFoldsMatchPerCell pins the SUMIF/SUMPRODUCT slab folds (and the
// multi-column rectangle fold behind SUM-family calls) to the per-cell
// oracle on a grid mixing numbers, text, numeric text, bools, blanks,
// errors, unpopulated rows, and a non-finite number that must force
// SUMPRODUCT off the fold.
func TestCondFoldsMatchPerCell(t *testing.T) {
	e := New(nil)
	for r := 1; r <= 60; r++ {
		switch r % 7 {
		case 0: // unpopulated row in A
		case 1:
			e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Num(float64(r-30)*1.5))
		case 2:
			e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Str("txt"))
		case 3:
			e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Str("12"))
		case 4:
			e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Boolean(r%2 == 0))
		case 5:
			e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Errorf("#N/A"))
		default:
			e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Num(float64(r)))
		}
		if r%3 != 0 { // B sparse, offset rows
			e.SetValue(ref.Ref{Col: 2, Row: r}, formula.Num(float64(60-r)+0.25))
		}
		if r%4 != 0 {
			e.SetValue(ref.Ref{Col: 3, Row: r}, formula.Num(-float64(r)*0.5))
		}
	}
	e.SetValue(ref.Ref{Col: 3, Row: 61}, formula.Num(math.Inf(1)))
	e.RecalculateAll()
	srcs := []string{
		"=SUMIF(A1:A60,\">0\")",
		"=SUMIF(A1:A60,\">0\",B1:B60)",
		"=SUMIF(A1:A60,\"<=0\",B2:B61)", // shifted sum range: constant row offset
		"=SUMIF(A1:A60,\"txt\",B1:B60)",
		"=SUMIF(A1:A60,\"<>txt\",B1:B60)", // matches blanks: fold declines upstream
		"=SUMIF(A1:A60,12,B1:B60)",
		"=SUMIF(B1:B60,\">30\",A1:A60)", // sum cells include text/bool/error rows
		"=SUMPRODUCT(A1:A60,B1:B60)",
		"=SUMPRODUCT(B1:B60,C1:C60)",
		"=SUMPRODUCT(B1:B60,C2:C61)", // partner range touching the Inf cell
		"=SUMPRODUCT(C1:C61,B1:B61)", // non-finite in the scanned range itself
		"=SUM(A1:C60)", "=AVERAGE(A1:C60)", "=COUNT(A1:C61)", "=MAX(B1:C61)",
	}
	for _, src := range srcs {
		ast := formula.MustParse(src)
		got := formula.Eval(ast, e.ValueResolver())
		want := formula.Eval(ast, perCellResolver{e})
		same := got == want ||
			(got.Kind == formula.KindNumber && want.Kind == formula.KindNumber &&
				math.IsNaN(got.Num) && math.IsNaN(want.Num))
		if !same {
			t.Errorf("%s: folded=%v per-cell=%v", src, got, want)
		}
	}
	// The canonical shapes really do engage the slab folds (not the
	// streaming fallback), and the declinations decline where promised.
	colA := ref.MustRange("A1:A60")
	colB := ref.MustRange("B1:B60")
	if _, ok := e.store.foldSumIf(colA, formula.ParseCriterion(formula.Str(">0")), colB, nil); !ok {
		t.Error("single-column SUMIF shape did not engage the fold")
	}
	if _, ok := e.store.foldSumIf(ref.MustRange("A1:B60"), formula.ParseCriterion(formula.Str(">0")), colB, nil); ok {
		t.Error("multi-column criterion range engaged the fold")
	}
	if _, ok := e.store.foldSumProduct(colA, colB, nil); !ok {
		t.Error("column SUMPRODUCT shape did not engage the fold")
	}
	if _, ok := e.store.foldSumProduct(ref.MustRange("C1:C61"), ref.MustRange("B1:B61"), nil); ok {
		t.Error("non-finite range did not force SUMPRODUCT off the fold")
	}
}

// TestCondFoldEvaluatesDirty: the recalculation-path SUMIF/SUMPRODUCT folds
// must evaluate dirty cells they pass over, like FoldRange does.
func TestCondFoldEvaluatesDirty(t *testing.T) {
	e := New(nil)
	e.SetValue(ref.MustCell("A1"), formula.Num(2))
	for i := 1; i <= 20; i++ {
		mustFormula(t, e, fmt.Sprintf("B%d", i), fmt.Sprintf("A1*%d", i))
		e.SetValue(ref.Ref{Col: 3, Row: i}, formula.Num(1))
	}
	mustFormula(t, e, "D1", "SUMIF(B1:B20,\">0\",C1:C20)+SUMPRODUCT(B1:B20,C1:C20)")
	e.RecalculateAll()
	e.SetValue(ref.MustCell("A1"), formula.Num(3))
	e.evaluate(ref.MustCell("D1"), e.cells[ref.MustCell("D1")])
	if v := e.Value(ref.MustCell("D1")); v.Num != 20+3*210 {
		t.Fatalf("D1 = %v, want %v", v, 20+3*210)
	}
	for i := 1; i <= 20; i++ {
		if e.Dirty(ref.Ref{Col: 2, Row: i}) {
			t.Fatalf("B%d left dirty by the conditional folds", i)
		}
	}
}

// TestFoldUnrolledBlockBoundaries hammers the 4-cell blocked fast path's
// edges: slab lengths 0..9 of clean numbers with a disruptor (text, error,
// dirty cell) planted at every position, fold vs streaming per-cell SUM.
func TestFoldUnrolledBlockBoundaries(t *testing.T) {
	for n := 0; n <= 9; n++ {
		for bad := -1; bad < n; bad++ {
			e := New(nil)
			for i := 0; i < n; i++ {
				at := ref.Ref{Col: 1, Row: i + 1}
				if i == bad {
					e.SetValue(at, formula.Str("x"))
				} else {
					e.SetValue(at, formula.Num(float64(i)*1.25+0.1))
				}
			}
			rng := ref.Range{Head: ref.Ref{Col: 1, Row: 1}, Tail: ref.Ref{Col: 1, Row: 10}}
			fold, ok := e.store.foldRange(rng, nil)
			if !ok {
				t.Fatal("fold refused")
			}
			sum, cnt := 0.0, 0
			e.store.scanRange(rng, func(_ ref.Ref, c *cell) bool {
				if c.value.Kind == formula.KindNumber {
					sum += c.value.Num
					cnt++
				}
				return true
			})
			if fold.Sum != sum || fold.Count != cnt {
				t.Fatalf("n=%d bad=%d: fold (%v,%d), scan (%v,%d)", n, bad, fold.Sum, fold.Count, sum, cnt)
			}
		}
	}
}
