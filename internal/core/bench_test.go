package core_test

import (
	"math/rand"
	"testing"

	"taco/internal/core"
	"taco/internal/ref"
	"taco/internal/workload"
)

// Microbenchmarks for the traversal hot path and incremental maintenance.
// CI compiles and smoke-runs them (-bench=. -benchtime=1x via `make
// bench-core`) so a regression that breaks or pathologically slows the
// compressed-graph primitives fails fast; run locally with -benchtime left
// at default for real numbers.

func benchSheet(b *testing.B, rows int) *core.Graph {
	b.Helper()
	sheet := workload.FinancialModel(rows, rand.New(rand.NewSource(1)))
	deps, err := sheet.Dependencies()
	if err != nil {
		b.Fatal(err)
	}
	return core.Build(deps, core.DefaultOptions())
}

func BenchmarkFindDependents(b *testing.B) {
	g := benchSheet(b, 200)
	seed := ref.CellRange(ref.Ref{Col: 2, Row: 7}) // a revenue cell feeding chains
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.FindDependents(seed)
	}
}

func BenchmarkFindPrecedents(b *testing.B) {
	g := benchSheet(b, 200)
	seed := ref.CellRange(ref.Ref{Col: 5, Row: 150}) // deep in a running total
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.FindPrecedents(seed)
	}
}

func BenchmarkAddDependency(b *testing.B) {
	sheet := workload.FinancialModel(200, rand.New(rand.NewSource(1)))
	deps := sheet.MustDependencies()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := core.NewGraph(core.DefaultOptions())
		b.StartTimer()
		for _, d := range deps {
			g.AddDependency(d)
		}
	}
}

func BenchmarkClear(b *testing.B) {
	sheet := workload.FinancialModel(200, rand.New(rand.NewSource(1)))
	deps := sheet.MustDependencies()
	targets := make([]ref.Range, 0, 64)
	for i := 0; i < 64; i++ {
		targets = append(targets, ref.CellRange(deps[(i*37)%len(deps)].Dep))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := core.Build(deps, core.DefaultOptions())
		b.StartTimer()
		for _, s := range targets {
			g.Clear(s)
		}
	}
}

func BenchmarkStats(b *testing.B) {
	g := benchSheet(b, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := g.Stats(); s.Edges == 0 {
			b.Fatal("empty graph")
		}
	}
}
