// Package core implements TACO: tabular-locality-based compression of
// spreadsheet formula graphs (Tang et al., ICDE 2023).
//
// A formula graph stores one directed edge per (referenced range -> formula
// cell) dependency. TACO partitions these edges so that each class either
// follows one of the predefined tabular-locality patterns — RR, RF, FR, FF,
// and the extended RR-Chain — or remains a Single uncompressed edge, and
// replaces every class with one constant-size compressed edge. The four key
// per-pattern functions (addDep, findDep, findPrec, removeDep) all run in
// O(1), independent of how many dependencies an edge compresses, which is
// what makes querying the compressed graph directly (without decompression)
// asymptotically cheaper than traversing the uncompressed graph.
//
// All pattern math in this file is written once for the column-major
// orientation (a vertical run of formula cells within one column, the
// paper's presentation). Row-major runs are handled by transposing the edge
// and the query, running the same code, and transposing back.
package core

import (
	"fmt"

	"taco/internal/ref"
)

// PatternType identifies the compression pattern of an edge.
type PatternType uint8

const (
	// Single marks an uncompressed edge holding exactly one dependency.
	Single PatternType = iota
	// RR (Relative plus Relative) — each formula cell keeps the same
	// relative offset to both corners of its referenced range: a sliding
	// window.
	RR
	// RF (Relative plus Fixed) — relative head, fixed tail: a shrinking
	// window.
	RF
	// FR (Fixed plus Relative) — fixed head, relative tail: an expanding
	// window, e.g. cumulative totals.
	FR
	// FF (Fixed plus Fixed) — every formula cell references the same fixed
	// range, e.g. a conversion rate or a VLOOKUP table.
	FF
	// RRChain is the extended pattern of Sec. V: a special case of RR where
	// each formula cell references its adjacent cell, forming a dependency
	// chain. findDep/findPrec return the whole transitive run in one step,
	// avoiding the repeated edge accesses that make plain RR slow on chains.
	RRChain

	numPatterns = int(RRChain) + 1
)

// String returns the paper's name for the pattern.
func (p PatternType) String() string {
	switch p {
	case Single:
		return "Single"
	case RR:
		return "RR"
	case RF:
		return "RF"
	case FR:
		return "FR"
	case FF:
		return "FF"
	case RRChain:
		return "RR-Chain"
	default:
		return fmt.Sprintf("Pattern(%d)", uint8(p))
	}
}

// Direction orients an RR-Chain along its compression axis.
type Direction uint8

const (
	// DirNone is set for non-chain patterns.
	DirNone Direction = iota
	// DirPrev — each formula cell references the adjacent cell before it
	// along the axis (the paper's l = ABOVE for column runs).
	DirPrev
	// DirNext — each formula cell references the adjacent cell after it
	// (l = BELOW for column runs).
	DirNext
)

// Meta is the constant-size pattern metadata of a compressed edge
// (the paper's e.meta). Only the fields relevant to the pattern are
// meaningful: RR uses HRel/TRel, RF uses HRel/TFix, FR uses HFix/TRel,
// FF uses HFix/TFix, RR-Chain uses HRel/TRel plus Dir.
type Meta struct {
	HRel ref.Offset
	TRel ref.Offset
	HFix ref.Ref
	TFix ref.Ref
	Dir  Direction
}

// T transposes the metadata for row-major <-> column-major conversion.
func (m Meta) T() Meta {
	return Meta{HRel: m.HRel.T(), TRel: m.TRel.T(), HFix: m.HFix.T(), TFix: m.TFix.T(), Dir: m.Dir}
}

// Dependency is one uncompressed formula-graph edge: the formula cell Dep
// references the range Prec. HeadFixed/TailFixed carry the `$` dollar-sign
// cues from the formula source (true when the corner is anchored on both
// axes), which the greedy compressor uses as a tie-breaking heuristic.
type Dependency struct {
	Prec                 ref.Range
	Dep                  ref.Ref
	HeadFixed, TailFixed bool
}

// rel computes the relative positions of the dependency's formula cell with
// respect to the head and tail of its referenced range (the paper's rel(e)).
func (d Dependency) rel() (hRel, tRel ref.Offset) {
	return d.Prec.Head.Sub(d.Dep), d.Prec.Tail.Sub(d.Dep)
}

// Edge is a (possibly compressed) edge of the TACO graph: the paper's
// e = (prec, dep, p, meta). Axis records the orientation of the compressed
// run. For Single edges, HeadFixed/TailFixed retain the dollar-sign cues of
// the underlying dependency so heuristics can consult them later.
type Edge struct {
	Prec    ref.Range
	Dep     ref.Range
	Pattern PatternType
	Axis    ref.Axis
	Meta    Meta

	HeadFixed, TailFixed bool
}

// Count returns the number of uncompressed dependencies the edge represents
// (the paper's |E'_i|). Every compressed run carries exactly one dependency
// per formula cell in Dep.
func (e *Edge) Count() int {
	if e.Pattern == Single {
		return 1
	}
	return e.Dep.Size()
}

// String renders the edge for diagnostics: "A1:B6 -> C1:C4 [RR]".
func (e *Edge) String() string {
	return fmt.Sprintf("%v -> %v [%v]", e.Prec, e.Dep, e.Pattern)
}

// singleEdge builds the uncompressed edge for a dependency.
func singleEdge(d Dependency) *Edge {
	return &Edge{
		Prec:      d.Prec,
		Dep:       ref.CellRange(d.Dep),
		Pattern:   Single,
		HeadFixed: d.HeadFixed,
		TailFixed: d.TailFixed,
	}
}

// canon returns a column-axis view of the edge, transposing row-axis edges.
func (e *Edge) canon() Edge {
	if e.Axis == ref.AxisCol {
		return *e
	}
	return Edge{
		Prec: e.Prec.T(), Dep: e.Dep.T(), Pattern: e.Pattern,
		Axis: ref.AxisCol, Meta: e.Meta.T(),
		HeadFixed: e.HeadFixed, TailFixed: e.TailFixed,
	}
}

// uncanon converts a column-axis edge back to the original axis.
func uncanon(c Edge, axis ref.Axis) *Edge {
	if axis == ref.AxisCol {
		out := c
		return &out
	}
	return &Edge{
		Prec: c.Prec.T(), Dep: c.Dep.T(), Pattern: c.Pattern,
		Axis: ref.AxisRow, Meta: c.Meta.T(),
		HeadFixed: c.HeadFixed, TailFixed: c.TailFixed,
	}
}

// transposeDep mirrors a dependency across the main diagonal.
func transposeDep(d Dependency) Dependency {
	return Dependency{
		Prec: d.Prec.T(), Dep: d.Dep.T(),
		HeadFixed: d.HeadFixed, TailFixed: d.TailFixed,
	}
}

// ---------------------------------------------------------------------------
// addDep — the paper's addDep(e, e'): extend a compressed edge with one more
// dependency whose formula cell is adjacent to e.dep along the axis.
// ---------------------------------------------------------------------------

// AddDep attempts to add dependency d (whose formula cell must be adjacent to
// e.Dep along axis) to edge e under pattern p, returning the merged edge or
// nil when the pattern's compression condition fails. e may be a Single edge
// (in which case p chooses the target pattern) or an already-compressed edge
// with e.Pattern == p and e.Axis == axis.
func AddDep(e *Edge, d Dependency, p PatternType, axis ref.Axis) *Edge {
	// Compressed edges can only extend along their own axis.
	if e.Pattern != Single && e.Axis != axis {
		return nil
	}
	c := *e
	dc := d
	if axis == ref.AxisRow {
		// Transpose into the canonical column orientation. Single edges have
		// no intrinsic axis, so this applies to them too.
		c = Edge{
			Prec: e.Prec.T(), Dep: e.Dep.T(), Pattern: e.Pattern,
			Axis: ref.AxisCol, Meta: e.Meta.T(),
			HeadFixed: e.HeadFixed, TailFixed: e.TailFixed,
		}
		dc = transposeDep(d)
	}
	merged := addDepCol(c, dc, p)
	if merged == nil {
		return nil
	}
	return uncanon(*merged, axis)
}

// addDepCol implements addDep on a column-axis canonical edge.
func addDepCol(e Edge, d Dependency, p PatternType) *Edge {
	depCell := ref.CellRange(d.Dep)
	// The new formula cell must extend the run contiguously in the same
	// column, directly above the head or below the tail.
	if !e.Dep.Adjacent(depCell, ref.AxisCol) {
		return nil
	}
	var meta Meta
	hRel, tRel := d.rel()
	if e.Pattern == Single {
		// Derive the candidate metadata from the pair of dependencies.
		prev := Dependency{Prec: e.Prec, Dep: e.Dep.Head}
		ph, pt := prev.rel()
		switch p {
		case RR:
			if ph != hRel || pt != tRel {
				return nil
			}
			meta = Meta{HRel: hRel, TRel: tRel}
		case RRChain:
			if ph != hRel || pt != tRel || hRel != tRel {
				return nil
			}
			switch (ref.Offset{DCol: 0, DRow: -1}) {
			case hRel:
				meta = Meta{HRel: hRel, TRel: tRel, Dir: DirPrev}
			default:
				if hRel != (ref.Offset{DCol: 0, DRow: 1}) {
					return nil
				}
				meta = Meta{HRel: hRel, TRel: tRel, Dir: DirNext}
			}
		case RF:
			if ph != hRel || e.Prec.Tail != d.Prec.Tail {
				return nil
			}
			meta = Meta{HRel: hRel, TFix: d.Prec.Tail}
		case FR:
			if pt != tRel || e.Prec.Head != d.Prec.Head {
				return nil
			}
			meta = Meta{HFix: d.Prec.Head, TRel: tRel}
		case FF:
			if e.Prec != d.Prec {
				return nil
			}
			meta = Meta{HFix: d.Prec.Head, TFix: d.Prec.Tail}
		default:
			return nil
		}
	} else {
		if e.Pattern != p {
			return nil
		}
		meta = e.Meta
		switch p {
		case RR, RRChain:
			if meta.HRel != hRel || meta.TRel != tRel {
				return nil
			}
		case RF:
			if meta.HRel != hRel || meta.TFix != d.Prec.Tail {
				return nil
			}
		case FR:
			if meta.HFix != d.Prec.Head || meta.TRel != tRel {
				return nil
			}
		case FF:
			if meta.HFix != d.Prec.Head || meta.TFix != d.Prec.Tail {
				return nil
			}
		default:
			return nil
		}
	}
	return &Edge{
		Prec:    e.Prec.Bound(d.Prec),
		Dep:     e.Dep.Bound(depCell),
		Pattern: p,
		Axis:    ref.AxisCol,
		Meta:    meta,
	}
}

// ---------------------------------------------------------------------------
// findDep — the paper's findDep(e, r): the dependents within e.Dep of a range
// r that overlaps e.Prec, in O(1).
// ---------------------------------------------------------------------------

// FindDeps returns the sub-range of e.Dep whose formulae reference at least
// one cell of r. r is clipped to e.Prec first; ok is false when the clipped
// query yields no dependents.
func FindDeps(e *Edge, r ref.Range) (ref.Range, bool) {
	clipped, ok := r.Intersect(e.Prec)
	if !ok {
		return ref.Range{}, false
	}
	if e.Axis == ref.AxisRow {
		c := e.canon()
		d, ok := findDepsCol(c, clipped.T())
		if !ok {
			return ref.Range{}, false
		}
		return d.T(), true
	}
	return findDepsCol(e.canon(), clipped)
}

func findDepsCol(e Edge, r ref.Range) (ref.Range, bool) {
	switch e.Pattern {
	case Single, FF:
		// Every formula cell references the whole precedent.
		return e.Dep, true
	case RR:
		// Back-calculate the first and last dependents whose sliding windows
		// intersect r (Fig. 6): dh + tRel = (e.prec.tail.col, r.head.row),
		// dt + hRel = (e.prec.head.col, r.tail.row).
		dh := ref.Ref{Col: e.Prec.Tail.Col, Row: r.Head.Row}.Add(neg(e.Meta.TRel))
		dt := ref.Ref{Col: e.Prec.Head.Col, Row: r.Tail.Row}.Add(neg(e.Meta.HRel))
		return clipRun(dh.Row, dt.Row, e.Dep)
	case RF:
		// Shrinking windows (Fig. 7): the head of the run references all of
		// e.Prec; the last dependent's window head row is r's bottom row.
		dt := ref.Ref{Col: e.Prec.Head.Col, Row: r.Tail.Row}.Add(neg(e.Meta.HRel))
		return clipRun(e.Dep.Head.Row, dt.Row, e.Dep)
	case FR:
		// Expanding windows: the first dependent's window tail row is r's top
		// row; everything below also covers r.
		dh := ref.Ref{Col: e.Prec.Tail.Col, Row: r.Head.Row}.Add(neg(e.Meta.TRel))
		return clipRun(dh.Row, e.Dep.Tail.Row, e.Dep)
	case RRChain:
		// Return the whole transitive chain suffix/prefix in one step.
		if e.Meta.Dir == DirPrev {
			// Each cell references the cell above; dependents of r are all
			// chain cells below r.head.
			return clipRun(r.Head.Row+1, e.Dep.Tail.Row, e.Dep)
		}
		// Each cell references the cell below; dependents propagate upward.
		return clipRun(e.Dep.Head.Row, r.Tail.Row-1, e.Dep)
	}
	return ref.Range{}, false
}

// clipRun intersects the row interval [rowA, rowB] with the dependent run.
func clipRun(rowA, rowB int, dep ref.Range) (ref.Range, bool) {
	if rowA < dep.Head.Row {
		rowA = dep.Head.Row
	}
	if rowB > dep.Tail.Row {
		rowB = dep.Tail.Row
	}
	if rowA > rowB {
		return ref.Range{}, false
	}
	col := dep.Head.Col
	return ref.Range{Head: ref.Ref{Col: col, Row: rowA}, Tail: ref.Ref{Col: col, Row: rowB}}, true
}

func neg(o ref.Offset) ref.Offset { return ref.Offset{DCol: -o.DCol, DRow: -o.DRow} }

// ---------------------------------------------------------------------------
// findPrec — the paper's findPrec(e, s): the precedents of a range s within
// e.Dep, in O(1).
// ---------------------------------------------------------------------------

// FindPrecs returns the range of cells referenced by the formula cells of s.
// s is clipped to e.Dep first; ok is false when the clipped query is empty.
func FindPrecs(e *Edge, s ref.Range) (ref.Range, bool) {
	clipped, ok := s.Intersect(e.Dep)
	if !ok {
		return ref.Range{}, false
	}
	if e.Axis == ref.AxisRow {
		c := e.canon()
		g, ok := findPrecsCol(c, clipped.T())
		if !ok {
			return ref.Range{}, false
		}
		return g.T(), true
	}
	return findPrecsCol(e.canon(), clipped)
}

func findPrecsCol(e Edge, s ref.Range) (ref.Range, bool) {
	switch e.Pattern {
	case Single, FF:
		return e.Prec, true
	case RR:
		return ref.Range{Head: s.Head.Add(e.Meta.HRel), Tail: s.Tail.Add(e.Meta.TRel)}, true
	case RF:
		// Shrinking windows: the first cell's window contains the rest.
		return ref.Range{Head: s.Head.Add(e.Meta.HRel), Tail: e.Meta.TFix}, true
	case FR:
		// Expanding windows: the last cell's window contains the rest.
		return ref.Range{Head: e.Meta.HFix, Tail: s.Tail.Add(e.Meta.TRel)}, true
	case RRChain:
		// Transitive precedents within the chain.
		if e.Meta.Dir == DirPrev {
			rowA, rowB := e.Prec.Head.Row, s.Tail.Row-1
			if rowA > rowB {
				return ref.Range{}, false
			}
			col := e.Prec.Head.Col
			return ref.Range{Head: ref.Ref{Col: col, Row: rowA}, Tail: ref.Ref{Col: col, Row: rowB}}, true
		}
		rowA, rowB := s.Head.Row+1, e.Prec.Tail.Row
		if rowA > rowB {
			return ref.Range{}, false
		}
		col := e.Prec.Head.Col
		return ref.Range{Head: ref.Ref{Col: col, Row: rowA}, Tail: ref.Ref{Col: col, Row: rowB}}, true
	}
	return ref.Range{}, false
}

// directPrecsCol returns the exact union of the direct precedents of the run
// s within the canonical edge — used by removeDep, where RR-Chain needs the
// per-cell (not transitive) precedent span.
func directPrecsCol(e Edge, s ref.Range) ref.Range {
	switch e.Pattern {
	case RRChain:
		return ref.Range{Head: s.Head.Add(e.Meta.HRel), Tail: s.Tail.Add(e.Meta.TRel)}
	default:
		g, _ := findPrecsCol(e, s)
		return g
	}
}

// ---------------------------------------------------------------------------
// removeDep — the paper's removeDep(e, s): delete the dependencies of the
// formula cells s from e, returning the edges covering the remaining run.
// ---------------------------------------------------------------------------

// RemoveDeps deletes the dependencies whose formula cells fall in s from edge
// e. It returns the replacement edges (zero, one, or two — the run pieces
// left after subtracting s). s is clipped to e.Dep by the caller contract but
// clipping again is harmless.
func RemoveDeps(e *Edge, s ref.Range) []*Edge {
	clipped, ok := s.Intersect(e.Dep)
	if !ok {
		return []*Edge{e}
	}
	if e.Pattern == Single {
		return nil // the whole (single-cell) edge is removed
	}
	axis := e.Axis
	c := e.canon()
	if axis == ref.AxisRow {
		clipped = clipped.T()
	}
	var out []*Edge
	for _, piece := range c.Dep.Subtract(clipped) {
		prec := directPrecsCol(c, piece)
		ne := Edge{
			Prec:    prec,
			Dep:     piece,
			Pattern: c.Pattern,
			Axis:    ref.AxisCol,
			Meta:    c.Meta,
		}
		if piece.IsCell() {
			ne.Pattern = Single
			ne.Meta = Meta{}
		}
		out = append(out, uncanon(ne, axis))
	}
	return out
}
