package core

import (
	"math/rand"
	"testing"

	"taco/internal/ref"
)

// columnMajor sorts dependencies the way sheet loaders deliver them.
func columnMajor(deps []Dependency) []Dependency {
	out := append([]Dependency(nil), deps...)
	// Stable insertion order: by column then row of the formula cell,
	// preserving per-cell reference order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1].Dep, out[j].Dep
			if a.Col > b.Col || a.Col == b.Col && a.Row > b.Row {
				out[j-1], out[j] = out[j], out[j-1]
			} else {
				break
			}
		}
	}
	return out
}

func TestBuildBulkMatchesGreedyOnRuns(t *testing.T) {
	// On a uniform run (every cell has the same reference shape) bulk and
	// greedy produce identical compression.
	var deps []Dependency
	for row := 3; row <= 200; row++ {
		c := ref.Ref{Col: 14, Row: row}
		deps = append(deps,
			Dependency{Prec: ref.CellRange(ref.Ref{Col: 1, Row: row}), Dep: c},
			Dependency{Prec: ref.CellRange(ref.Ref{Col: 1, Row: row - 1}), Dep: c},
			Dependency{Prec: ref.CellRange(ref.Ref{Col: 14, Row: row - 1}), Dep: c},
			Dependency{Prec: ref.CellRange(ref.Ref{Col: 13, Row: row}), Dep: c},
		)
	}
	greedy := Build(deps, DefaultOptions())
	bulk := BuildBulk(deps, DefaultOptions())
	if bulk.NumDependencies() != greedy.NumDependencies() {
		t.Fatalf("deps %d vs %d", bulk.NumDependencies(), greedy.NumDependencies())
	}
	if bulk.NumEdges() != greedy.NumEdges() {
		t.Fatalf("edges %d vs %d on a uniform column workload", bulk.NumEdges(), greedy.NumEdges())
	}
	if err := bulk.Check(); err != nil {
		t.Fatal(err)
	}

	// On the Fig. 2 column (N2 has a different shape than N3..) bulk may
	// leave at most one extra Single edge behind.
	f2 := columnMajor(fig2Deps(200))
	g2, b2 := Build(f2, DefaultOptions()), BuildBulk(f2, DefaultOptions())
	if b2.NumEdges() > g2.NumEdges()+1 {
		t.Fatalf("fig2: bulk %d vs greedy %d", b2.NumEdges(), g2.NumEdges())
	}
}

func TestBuildBulkQueriesAgree(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		deps := columnMajor(genRandomDeps(rng))
		greedy := Build(deps, DefaultOptions())
		bulk := BuildBulk(deps, DefaultOptions())
		if bulk.NumDependencies() != len(deps) {
			t.Fatalf("seed %d: bulk lost dependencies: %d vs %d", seed, bulk.NumDependencies(), len(deps))
		}
		if err := bulk.Check(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for q := 0; q < 6; q++ {
			r := ref.CellRange(ref.Ref{Col: 1 + rng.Intn(7), Row: 1 + rng.Intn(25)})
			a := cellsOf(greedy.FindDependents(r))
			b := cellsOf(bulk.FindDependents(r))
			sameCells(t, "bulk dependents", b, a)
		}
		// Bulk never compresses worse than 25% over greedy on these
		// column-major workloads (it forgoes only row-axis merges).
		if bulk.NumEdges() > greedy.NumEdges()+greedy.NumEdges()/4+2 {
			t.Fatalf("seed %d: bulk %d edges vs greedy %d", seed, bulk.NumEdges(), greedy.NumEdges())
		}
	}
}

func TestBuildBulkEmptyAndSingle(t *testing.T) {
	g := BuildBulk(nil, DefaultOptions())
	if g.NumEdges() != 0 {
		t.Fatal("empty bulk build")
	}
	g = BuildBulk([]Dependency{dep("A1:A3", "B1")}, DefaultOptions())
	if g.NumEdges() != 1 || g.NumDependencies() != 1 {
		t.Fatalf("single bulk build: %d/%d", g.NumEdges(), g.NumDependencies())
	}
}

func TestBuildBulkInRow(t *testing.T) {
	var deps []Dependency
	for row := 1; row <= 20; row++ {
		deps = append(deps,
			Dependency{Prec: ref.CellRange(ref.Ref{Col: 1, Row: row}), Dep: ref.Ref{Col: 2, Row: row}},
			Dependency{Prec: ref.RangeOf(ref.Ref{Col: 1, Row: row}, ref.Ref{Col: 1, Row: row + 1}), Dep: ref.Ref{Col: 3, Row: row}},
		)
	}
	deps = columnMajor(deps)
	g := BuildBulk(deps, InRowOptions())
	st := g.PatternStats()
	// Only the derived column compresses under InRow.
	if st[RR].Edges != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if g.NumEdges() != 21 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestBuildBulkRunBreaks(t *testing.T) {
	// A run with a gap and a reference-count change closes runs correctly.
	deps := []Dependency{
		dep("A1", "B1"),
		dep("A2", "B2"),
		// B3 has TWO references: run shape changes.
		dep("A3", "B3"),
		dep("Z1", "B3"),
		// gap at B4; resume at B5.
		dep("A5", "B5"),
		dep("A6", "B6"),
	}
	g := BuildBulk(deps, DefaultOptions())
	if g.NumDependencies() != len(deps) {
		t.Fatalf("deps = %d", g.NumDependencies())
	}
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	// B1:B2 merge; B3's two refs are singles; B5:B6 merge.
	if g.NumEdges() != 4 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func BenchmarkBuildBulkVsGreedy(b *testing.B) {
	deps := columnMajor(fig2Deps(3000))
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Build(deps, DefaultOptions())
		}
	})
	b.Run("bulk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BuildBulk(deps, DefaultOptions())
		}
	})
}
