package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"slices"

	"taco/internal/ref"
	"taco/internal/rtree"
)

// This file implements snapshotting: serialising a compressed formula graph
// to a compact binary stream and loading it back. A DataSpread-style host
// persists the graph across sessions so reopening a large workbook skips
// recompression (building is the one operation where TACO pays more than
// NoComp — Fig. 11 — so amortising it matters).
//
// Format (little-endian varints):
//
//	magic "TACOG1" | edge count N | N edge records
//
// Each edge record: pattern byte, axis byte, flags byte, prec corners (4
// uvarints), dep corners (4 uvarints), then pattern-specific metadata.

var snapshotMagic = []byte("TACOG1")

// ErrBadSnapshot is returned when decoding malformed snapshot data.
var ErrBadSnapshot = errors.New("core: malformed graph snapshot")

// byteWriter is the buffered sink snapshot encoding needs; callers passing
// one (bytes.Buffer, bufio.Writer) skip the wrapper layer entirely.
type byteWriter interface {
	io.Writer
	io.ByteWriter
}

// WriteSnapshot serialises the graph. Edges are written in a deterministic
// order so equal graphs produce identical bytes.
func (g *Graph) WriteSnapshot(w io.Writer) error {
	bw, buffered := w.(byteWriter)
	if !buffered {
		bw = bufio.NewWriter(w)
	}
	if _, err := bw.Write(snapshotMagic); err != nil {
		return err
	}
	edges := make([]*Edge, 0, len(g.edges))
	for e := range g.edges {
		edges = append(edges, e)
	}
	slices.SortFunc(edges, func(a, b *Edge) int {
		if a == b {
			return 0
		}
		if edgeLess(a, b) {
			return -1
		}
		return 1
	})
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(edges))); err != nil {
		return err
	}
	for _, e := range edges {
		flags := byte(0)
		if e.HeadFixed {
			flags |= 1
		}
		if e.TailFixed {
			flags |= 2
		}
		if _, err := bw.Write([]byte{byte(e.Pattern), byte(e.Axis), flags}); err != nil {
			return err
		}
		for _, v := range []int{
			e.Prec.Head.Col, e.Prec.Head.Row, e.Prec.Tail.Col, e.Prec.Tail.Row,
			e.Dep.Head.Col, e.Dep.Head.Row, e.Dep.Tail.Col, e.Dep.Tail.Row,
		} {
			if err := putUvarint(uint64(v)); err != nil {
				return err
			}
		}
		if err := writeMeta(putUvarint, bw, e); err != nil {
			return err
		}
	}
	if f, ok := bw.(*bufio.Writer); ok {
		return f.Flush()
	}
	return nil
}

func edgeLess(a, b *Edge) bool {
	ka := [9]int{a.Prec.Head.Col, a.Prec.Head.Row, a.Prec.Tail.Col, a.Prec.Tail.Row,
		a.Dep.Head.Col, a.Dep.Head.Row, a.Dep.Tail.Col, a.Dep.Tail.Row, int(a.Pattern)}
	kb := [9]int{b.Prec.Head.Col, b.Prec.Head.Row, b.Prec.Tail.Col, b.Prec.Tail.Row,
		b.Dep.Head.Col, b.Dep.Head.Row, b.Dep.Tail.Col, b.Dep.Tail.Row, int(b.Pattern)}
	for i := range ka {
		if ka[i] != kb[i] {
			return ka[i] < kb[i]
		}
	}
	return false
}

// zig encodes a possibly-negative offset component.
func zig(v int) uint64 { return uint64(uint(v)<<1) ^ uint64(int64(v)>>63) }

func unzig(u uint64) int { return int(int64(u>>1) ^ -int64(u&1)) }

func writeMeta(putUvarint func(uint64) error, w io.Writer, e *Edge) error {
	switch e.Pattern {
	case RR, RRChain:
		for _, v := range []int{e.Meta.HRel.DCol, e.Meta.HRel.DRow, e.Meta.TRel.DCol, e.Meta.TRel.DRow} {
			if err := putUvarint(zig(v)); err != nil {
				return err
			}
		}
		if e.Pattern == RRChain {
			if _, err := w.Write([]byte{byte(e.Meta.Dir)}); err != nil {
				return err
			}
		}
	case RF:
		for _, v := range []int{e.Meta.HRel.DCol, e.Meta.HRel.DRow} {
			if err := putUvarint(zig(v)); err != nil {
				return err
			}
		}
		for _, v := range []int{e.Meta.TFix.Col, e.Meta.TFix.Row} {
			if err := putUvarint(uint64(v)); err != nil {
				return err
			}
		}
	case FR:
		for _, v := range []int{e.Meta.HFix.Col, e.Meta.HFix.Row} {
			if err := putUvarint(uint64(v)); err != nil {
				return err
			}
		}
		for _, v := range []int{e.Meta.TRel.DCol, e.Meta.TRel.DRow} {
			if err := putUvarint(zig(v)); err != nil {
				return err
			}
		}
	case FF:
		for _, v := range []int{e.Meta.HFix.Col, e.Meta.HFix.Row, e.Meta.TFix.Col, e.Meta.TFix.Row} {
			if err := putUvarint(uint64(v)); err != nil {
				return err
			}
		}
	case Single:
		// No metadata.
	default:
		return fmt.Errorf("core: cannot snapshot pattern %v", e.Pattern)
	}
	return nil
}

// ReadSnapshot deserialises a graph written by WriteSnapshot. The graph uses
// the provided options for any subsequent mutation.
func ReadSnapshot(r io.Reader, opts Options) (*Graph, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if string(magic) != string(snapshotMagic) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadSnapshot, magic)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	g := NewGraph(opts)
	// Pre-size the edge and vertex maps (bounded against hostile counts).
	g.edges = make(map[*Edge]struct{}, min(count, 1<<16))
	g.verts = make(map[ref.Range]int, min(2*count, 1<<17))
	// Slab-allocate edge records in bounded blocks: one allocation per block
	// instead of one per edge, with stable pointers (a full block is never
	// regrown). The block cap also bounds the up-front trust in a hostile
	// count.
	const edgeBlock = 1024
	var block []Edge
	newEdge := func() *Edge {
		if len(block) == cap(block) {
			block = make([]Edge, 0, min(count, edgeBlock))
		}
		block = append(block, Edge{})
		return &block[len(block)-1]
	}
	edges := make([]*Edge, 0, min(count, 4*edgeBlock))
	readByte := func() (byte, error) {
		var b [1]byte
		_, err := io.ReadFull(br, b[:])
		return b[0], err
	}
	for i := uint64(0); i < count; i++ {
		pb, err := readByte()
		if err != nil {
			return nil, fmt.Errorf("%w: edge %d: %v", ErrBadSnapshot, i, err)
		}
		ab, err := readByte()
		if err != nil {
			return nil, fmt.Errorf("%w: edge %d: %v", ErrBadSnapshot, i, err)
		}
		flags, err := readByte()
		if err != nil {
			return nil, fmt.Errorf("%w: edge %d: %v", ErrBadSnapshot, i, err)
		}
		e := newEdge()
		*e = Edge{
			Pattern:   PatternType(pb),
			Axis:      ref.Axis(ab),
			HeadFixed: flags&1 != 0,
			TailFixed: flags&2 != 0,
		}
		if int(e.Pattern) >= numPatterns {
			return nil, fmt.Errorf("%w: edge %d: unknown pattern %d", ErrBadSnapshot, i, pb)
		}
		var corners [8]int
		for j := range corners {
			u, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: edge %d: %v", ErrBadSnapshot, i, err)
			}
			corners[j] = int(u)
		}
		e.Prec = ref.Range{Head: ref.Ref{Col: corners[0], Row: corners[1]}, Tail: ref.Ref{Col: corners[2], Row: corners[3]}}
		e.Dep = ref.Range{Head: ref.Ref{Col: corners[4], Row: corners[5]}, Tail: ref.Ref{Col: corners[6], Row: corners[7]}}
		if !e.Prec.Valid() || !e.Dep.Valid() {
			return nil, fmt.Errorf("%w: edge %d: invalid ranges", ErrBadSnapshot, i)
		}
		if err := readMeta(br, readByte, e); err != nil {
			return nil, fmt.Errorf("%w: edge %d: %v", ErrBadSnapshot, i, err)
		}
		if err := CheckEdge(e); err != nil {
			return nil, fmt.Errorf("%w: edge %d: %v", ErrBadSnapshot, i, err)
		}
		edges = append(edges, e)
	}
	// Bulk-load both spatial indexes (STR packing): snapshot loads are the
	// all-entries-up-front case the packed tree is built for.
	precItems := make([]rtree.Item[*Edge], len(edges))
	depItems := make([]rtree.Item[*Edge], len(edges))
	for i, e := range edges {
		g.edges[e] = struct{}{}
		g.noteInsert(e)
		precItems[i] = rtree.Item[*Edge]{Rect: e.Prec, Value: e}
		depItems[i] = rtree.Item[*Edge]{Rect: e.Dep, Value: e}
	}
	g.byPrec = rtree.BulkLoad(precItems)
	g.byDep = rtree.BulkLoad(depItems)
	return g, nil
}

func readMeta(br *bufio.Reader, readByte func() (byte, error), e *Edge) error {
	readZig := func(dst *int) error {
		u, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		*dst = unzig(u)
		return nil
	}
	readU := func(dst *int) error {
		u, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		*dst = int(u)
		return nil
	}
	switch e.Pattern {
	case RR, RRChain:
		for _, dst := range []*int{&e.Meta.HRel.DCol, &e.Meta.HRel.DRow, &e.Meta.TRel.DCol, &e.Meta.TRel.DRow} {
			if err := readZig(dst); err != nil {
				return err
			}
		}
		if e.Pattern == RRChain {
			d, err := readByte()
			if err != nil {
				return err
			}
			e.Meta.Dir = Direction(d)
			if e.Meta.Dir != DirPrev && e.Meta.Dir != DirNext {
				return fmt.Errorf("bad chain direction %d", d)
			}
		}
	case RF:
		for _, dst := range []*int{&e.Meta.HRel.DCol, &e.Meta.HRel.DRow} {
			if err := readZig(dst); err != nil {
				return err
			}
		}
		for _, dst := range []*int{&e.Meta.TFix.Col, &e.Meta.TFix.Row} {
			if err := readU(dst); err != nil {
				return err
			}
		}
	case FR:
		for _, dst := range []*int{&e.Meta.HFix.Col, &e.Meta.HFix.Row} {
			if err := readU(dst); err != nil {
				return err
			}
		}
		for _, dst := range []*int{&e.Meta.TRel.DCol, &e.Meta.TRel.DRow} {
			if err := readZig(dst); err != nil {
				return err
			}
		}
	case FF:
		for _, dst := range []*int{&e.Meta.HFix.Col, &e.Meta.HFix.Row, &e.Meta.TFix.Col, &e.Meta.TFix.Row} {
			if err := readU(dst); err != nil {
				return err
			}
		}
	}
	return nil
}
