package core

import (
	"testing"

	"taco/internal/ref"
)

func mustRange(s string) ref.Range { return ref.MustRange(s) }
func mustCell(s string) ref.Ref    { return ref.MustCell(s) }

func dep(prec, cell string) Dependency {
	return Dependency{Prec: mustRange(prec), Dep: mustCell(cell)}
}

// buildRun compresses a list of dependencies into a single edge using
// pattern p along axis, failing the test if any step rejects.
func buildRun(t *testing.T, p PatternType, axis ref.Axis, deps ...Dependency) *Edge {
	t.Helper()
	e := singleEdge(deps[0])
	for _, d := range deps[1:] {
		merged := AddDep(e, d, p, axis)
		if merged == nil {
			t.Fatalf("AddDep(%v, %v, %v) rejected", e, d, p)
		}
		e = merged
	}
	return e
}

// --- Fig. 4a: RR, the sliding window -------------------------------------

func fig4aEdge(t *testing.T) *Edge {
	return buildRun(t, RR, ref.AxisCol,
		dep("A1:B3", "C1"), dep("A2:B4", "C2"), dep("A3:B5", "C3"), dep("A4:B6", "C4"))
}

func TestRRCompression(t *testing.T) {
	e := fig4aEdge(t)
	if e.Prec != mustRange("A1:B6") || e.Dep != mustRange("C1:C4") {
		t.Fatalf("edge = %v", e)
	}
	if e.Pattern != RR || e.Count() != 4 {
		t.Fatalf("pattern/count = %v %d", e.Pattern, e.Count())
	}
	wantH := ref.Offset{DCol: -2, DRow: 0}
	wantT := ref.Offset{DCol: -1, DRow: 2}
	if e.Meta.HRel != wantH || e.Meta.TRel != wantT {
		t.Fatalf("meta = %+v", e.Meta)
	}
}

func TestRRRejectsMismatchedOffsets(t *testing.T) {
	e := singleEdge(dep("A1:B3", "C1"))
	// C2 referencing A2:B5 has tRel (-1,3), not (-1,2).
	if AddDep(e, dep("A2:B5", "C2"), RR, ref.AxisCol) != nil {
		t.Fatal("mismatched offsets must reject")
	}
	// Non-adjacent cell rejects.
	if AddDep(e, dep("A3:B5", "C3"), RR, ref.AxisCol) != nil {
		t.Fatal("non-adjacent dep must reject")
	}
	// Wrong column rejects.
	if AddDep(e, dep("A2:B4", "D2"), RR, ref.AxisCol) != nil {
		t.Fatal("different column must reject")
	}
}

func TestRRFindDeps(t *testing.T) {
	e := fig4aEdge(t)
	cases := []struct {
		query, want string
	}{
		{"A1", "C1"},       // only C1's window covers row 1
		{"B6", "C4"},       // only C4's window covers row 6
		{"A3", "C1:C3"},    // windows of C1..C3 cover row 3
		{"A1:B6", "C1:C4"}, // everything
		{"A2:A3", "C1:C3"}, //
		{"B4:B5", "C2:C4"}, //
	}
	for _, c := range cases {
		got, ok := FindDeps(e, mustRange(c.query))
		if !ok || got != mustRange(c.want) {
			t.Errorf("FindDeps(%s) = %v %v, want %s", c.query, got, ok, c.want)
		}
	}
	// Query outside prec yields nothing.
	if _, ok := FindDeps(e, mustRange("Z99")); ok {
		t.Error("out-of-range query must return not-ok")
	}
}

func TestRRFindPrecs(t *testing.T) {
	e := fig4aEdge(t)
	got, ok := FindPrecs(e, mustRange("C2"))
	if !ok || got != mustRange("A2:B4") {
		t.Fatalf("FindPrecs(C2) = %v", got)
	}
	got, ok = FindPrecs(e, mustRange("C2:C3"))
	if !ok || got != mustRange("A2:B5") {
		t.Fatalf("FindPrecs(C2:C3) = %v", got)
	}
	if _, ok = FindPrecs(e, mustRange("D9")); ok {
		t.Fatal("query outside dep must return not-ok")
	}
}

func TestRRRemoveDeps(t *testing.T) {
	e := fig4aEdge(t)
	// Removing C2 leaves C1 (Single) and C3:C4 (RR).
	out := RemoveDeps(e, mustRange("C2"))
	if len(out) != 2 {
		t.Fatalf("pieces = %v", out)
	}
	var single, run *Edge
	for _, p := range out {
		if p.Pattern == Single {
			single = p
		} else {
			run = p
		}
	}
	if single == nil || single.Dep != mustRange("C1") || single.Prec != mustRange("A1:B3") {
		t.Fatalf("single piece = %v", single)
	}
	if run == nil || run.Dep != mustRange("C3:C4") || run.Prec != mustRange("A3:B6") || run.Pattern != RR {
		t.Fatalf("run piece = %v", run)
	}
	// Removing everything leaves nothing.
	if out := RemoveDeps(fig4aEdge(t), mustRange("C1:C4")); len(out) != 0 {
		t.Fatalf("full removal = %v", out)
	}
	// Removing a non-overlapping range returns the edge untouched.
	e = fig4aEdge(t)
	if out := RemoveDeps(e, mustRange("Z1")); len(out) != 1 || out[0] != e {
		t.Fatalf("no-op removal = %v", out)
	}
}

// --- Fig. 4b: RF, the shrinking window ------------------------------------

func fig4bEdge(t *testing.T) *Edge {
	return buildRun(t, RF, ref.AxisCol,
		dep("A1:B4", "C1"), dep("A2:B4", "C2"), dep("A3:B4", "C3"), dep("A4:B4", "C4"))
}

func TestRFCompression(t *testing.T) {
	e := fig4bEdge(t)
	if e.Prec != mustRange("A1:B4") || e.Dep != mustRange("C1:C4") || e.Pattern != RF {
		t.Fatalf("edge = %v", e)
	}
	if e.Meta.HRel != (ref.Offset{DCol: -2, DRow: 0}) || e.Meta.TFix != mustCell("B4") {
		t.Fatalf("meta = %+v", e.Meta)
	}
}

func TestRFFindDeps(t *testing.T) {
	e := fig4bEdge(t)
	cases := []struct {
		query, want string
	}{
		{"A1", "C1"},       // only C1's window includes row 1
		{"A4:B4", "C1:C4"}, // bottom row is in every window
		{"A2", "C1:C2"},
		{"B3", "C1:C3"},
	}
	for _, c := range cases {
		got, ok := FindDeps(e, mustRange(c.query))
		if !ok || got != mustRange(c.want) {
			t.Errorf("FindDeps(%s) = %v %v, want %s", c.query, got, ok, c.want)
		}
	}
}

func TestRFFindPrecs(t *testing.T) {
	e := fig4bEdge(t)
	got, ok := FindPrecs(e, mustRange("C3"))
	if !ok || got != mustRange("A3:B4") {
		t.Fatalf("FindPrecs(C3) = %v", got)
	}
	// The head's window contains the rest.
	got, ok = FindPrecs(e, mustRange("C2:C4"))
	if !ok || got != mustRange("A2:B4") {
		t.Fatalf("FindPrecs(C2:C4) = %v", got)
	}
}

func TestRFRemoveDeps(t *testing.T) {
	out := RemoveDeps(fig4bEdge(t), mustRange("C2:C3"))
	if len(out) != 2 {
		t.Fatalf("pieces = %v", out)
	}
	for _, p := range out {
		switch p.Dep {
		case mustRange("C1"):
			if p.Pattern != Single || p.Prec != mustRange("A1:B4") {
				t.Errorf("C1 piece = %v", p)
			}
		case mustRange("C4"):
			if p.Pattern != Single || p.Prec != mustRange("A4:B4") {
				t.Errorf("C4 piece = %v", p)
			}
		default:
			t.Errorf("unexpected piece %v", p)
		}
	}
}

// --- Fig. 4c: FR, the expanding window ------------------------------------

func fig4cEdge(t *testing.T) *Edge {
	return buildRun(t, FR, ref.AxisCol,
		dep("A1:B1", "C1"), dep("A1:B2", "C2"), dep("A1:B3", "C3"))
}

func TestFRCompression(t *testing.T) {
	e := fig4cEdge(t)
	if e.Prec != mustRange("A1:B3") || e.Dep != mustRange("C1:C3") || e.Pattern != FR {
		t.Fatalf("edge = %v", e)
	}
	if e.Meta.HFix != mustCell("A1") || e.Meta.TRel != (ref.Offset{DCol: -1, DRow: 0}) {
		t.Fatalf("meta = %+v", e.Meta)
	}
}

func TestFRFindDeps(t *testing.T) {
	e := fig4cEdge(t)
	cases := []struct {
		query, want string
	}{
		{"A1:B1", "C1:C3"}, // first row is in every window
		{"A3", "C3"},
		{"B2", "C2:C3"},
	}
	for _, c := range cases {
		got, ok := FindDeps(e, mustRange(c.query))
		if !ok || got != mustRange(c.want) {
			t.Errorf("FindDeps(%s) = %v %v, want %s", c.query, got, ok, c.want)
		}
	}
}

func TestFRFindPrecs(t *testing.T) {
	e := fig4cEdge(t)
	got, ok := FindPrecs(e, mustRange("C2"))
	if !ok || got != mustRange("A1:B2") {
		t.Fatalf("FindPrecs(C2) = %v", got)
	}
	got, ok = FindPrecs(e, mustRange("C1:C2"))
	if !ok || got != mustRange("A1:B2") {
		t.Fatalf("FindPrecs(C1:C2) = %v", got)
	}
}

// --- Fig. 4d: FF, the fixed window -----------------------------------------

func fig4dEdge(t *testing.T) *Edge {
	return buildRun(t, FF, ref.AxisCol,
		dep("A1:B3", "C1"), dep("A1:B3", "C2"), dep("A1:B3", "C3"))
}

func TestFFCompression(t *testing.T) {
	e := fig4dEdge(t)
	if e.Prec != mustRange("A1:B3") || e.Dep != mustRange("C1:C3") || e.Pattern != FF {
		t.Fatalf("edge = %v", e)
	}
	if e.Meta.HFix != mustCell("A1") || e.Meta.TFix != mustCell("B3") {
		t.Fatalf("meta = %+v", e.Meta)
	}
	// FF rejects a different precedent.
	if AddDep(e, dep("A1:B4", "C4"), FF, ref.AxisCol) != nil {
		t.Fatal("FF must reject different precedent")
	}
}

func TestFFQueries(t *testing.T) {
	e := fig4dEdge(t)
	got, ok := FindDeps(e, mustRange("B2"))
	if !ok || got != mustRange("C1:C3") {
		t.Fatalf("FindDeps = %v", got)
	}
	gotP, ok := FindPrecs(e, mustRange("C2"))
	if !ok || gotP != mustRange("A1:B3") {
		t.Fatalf("FindPrecs = %v", gotP)
	}
	out := RemoveDeps(e, mustRange("C1"))
	if len(out) != 1 || out[0].Dep != mustRange("C2:C3") || out[0].Pattern != FF {
		t.Fatalf("RemoveDeps = %v", out)
	}
}

// --- Fig. 9: RR-Chain -------------------------------------------------------

func fig9Edge(t *testing.T) *Edge {
	// A2=A1+1, A3=A2+1, A4=A3+1.
	return buildRun(t, RRChain, ref.AxisCol,
		dep("A1", "A2"), dep("A2", "A3"), dep("A3", "A4"))
}

func TestRRChainCompression(t *testing.T) {
	e := fig9Edge(t)
	if e.Prec != mustRange("A1:A3") || e.Dep != mustRange("A2:A4") || e.Pattern != RRChain {
		t.Fatalf("edge = %v", e)
	}
	if e.Meta.Dir != DirPrev {
		t.Fatalf("dir = %v", e.Meta.Dir)
	}
}

func TestRRChainFindDepsTransitive(t *testing.T) {
	e := fig9Edge(t)
	// Dependents of A1: the whole chain A2:A4 in one step.
	got, ok := FindDeps(e, mustRange("A1"))
	if !ok || got != mustRange("A2:A4") {
		t.Fatalf("FindDeps(A1) = %v", got)
	}
	// Dependents of A2 (paper's example): A3 through the tail A4.
	got, ok = FindDeps(e, mustRange("A2"))
	if !ok || got != mustRange("A3:A4") {
		t.Fatalf("FindDeps(A2) = %v", got)
	}
	// A4 is the last cell; within this edge its only role as precedent is
	// via the overlap with prec A3 handled by clipping: querying A4 clips to
	// nothing inside e.Prec (A1:A3)? A4 is outside prec, so no dependents.
	if _, ok := FindDeps(e, mustRange("A4")); ok {
		t.Fatal("A4 is not inside the chain's precedent range")
	}
}

func TestRRChainFindPrecsTransitive(t *testing.T) {
	e := fig9Edge(t)
	got, ok := FindPrecs(e, mustRange("A4"))
	if !ok || got != mustRange("A1:A3") {
		t.Fatalf("FindPrecs(A4) = %v", got)
	}
	got, ok = FindPrecs(e, mustRange("A2"))
	if !ok || got != mustRange("A1") {
		t.Fatalf("FindPrecs(A2) = %v", got)
	}
}

func TestRRChainBelow(t *testing.T) {
	// Each formula references the cell below: A1=A2+1, A2=A3+1, A3=A4+1.
	e := buildRun(t, RRChain, ref.AxisCol,
		dep("A2", "A1"), dep("A3", "A2"), dep("A4", "A3"))
	if e.Meta.Dir != DirNext {
		t.Fatalf("dir = %v", e.Meta.Dir)
	}
	if e.Prec != mustRange("A2:A4") || e.Dep != mustRange("A1:A3") {
		t.Fatalf("edge = %v", e)
	}
	// Dependents of A4 propagate upward through the whole chain.
	got, ok := FindDeps(e, mustRange("A4"))
	if !ok || got != mustRange("A1:A3") {
		t.Fatalf("FindDeps(A4) = %v", got)
	}
	got, ok = FindPrecs(e, mustRange("A1"))
	if !ok || got != mustRange("A2:A4") {
		t.Fatalf("FindPrecs(A1) = %v", got)
	}
}

func TestRRChainRemoveDepsUsesDirectPrecs(t *testing.T) {
	e := fig9Edge(t)
	out := RemoveDeps(e, mustRange("A3"))
	if len(out) != 2 {
		t.Fatalf("pieces = %v", out)
	}
	for _, p := range out {
		switch p.Dep {
		case mustRange("A2"):
			if p.Prec != mustRange("A1") || p.Pattern != Single {
				t.Errorf("A2 piece = %v", p)
			}
		case mustRange("A4"):
			// A4 still references A3 (now a pure value).
			if p.Prec != mustRange("A3") || p.Pattern != Single {
				t.Errorf("A4 piece = %v", p)
			}
		default:
			t.Errorf("unexpected piece %v", p)
		}
	}
}

func TestRRChainRejectsNonChain(t *testing.T) {
	e := singleEdge(dep("A1", "A2"))
	// B3 references B2: chain shape but different column run? dep B3 is not
	// column-adjacent to A2.
	if AddDep(e, dep("B2", "B3"), RRChain, ref.AxisCol) != nil {
		t.Fatal("different column must reject")
	}
	// A3 referencing A1 is RR-compatible only with offset (0,-2): not chain.
	if AddDep(e, dep("A2:A2", "A4"), RRChain, ref.AxisCol) != nil {
		t.Fatal("non-adjacent dep must reject")
	}
}

// --- Row-axis symmetry -------------------------------------------------------

func TestRowAxisRR(t *testing.T) {
	// The transposed Fig. 4a: formulae in row 3 spanning columns, windows
	// sliding horizontally. C1 -> A3 means A3 = f(C1:...) etc. Construct:
	// dep cells A3,B3,C3 referencing A1:C2, B1:D2, C1:E2.
	e := buildRun(t, RR, ref.AxisRow,
		dep("A1:C2", "A3"), dep("B1:D2", "B3"), dep("C1:E2", "C3"))
	if e.Prec != mustRange("A1:E2") || e.Dep != mustRange("A3:C3") {
		t.Fatalf("edge = %v", e)
	}
	if e.Axis != ref.AxisRow {
		t.Fatalf("axis = %v", e.Axis)
	}
	got, ok := FindDeps(e, mustRange("C1"))
	if !ok || got != mustRange("A3:C3") {
		t.Fatalf("FindDeps(C1) = %v", got)
	}
	got, ok = FindDeps(e, mustRange("E2"))
	if !ok || got != mustRange("C3") {
		t.Fatalf("FindDeps(E2) = %v", got)
	}
	gotP, ok := FindPrecs(e, mustRange("B3"))
	if !ok || gotP != mustRange("B1:D2") {
		t.Fatalf("FindPrecs(B3) = %v", gotP)
	}
	out := RemoveDeps(e, mustRange("B3"))
	if len(out) != 2 {
		t.Fatalf("pieces = %v", out)
	}
	for _, p := range out {
		if p.Axis != ref.AxisRow {
			t.Errorf("piece axis = %v", p.Axis)
		}
	}
}

func TestRowAxisChain(t *testing.T) {
	// B1=A1+1, C1=B1+1, D1=C1+1: a horizontal chain.
	e := buildRun(t, RRChain, ref.AxisRow,
		dep("A1", "B1"), dep("B1", "C1"), dep("C1", "D1"))
	if e.Pattern != RRChain || e.Axis != ref.AxisRow {
		t.Fatalf("edge = %v axis %v", e, e.Axis)
	}
	got, ok := FindDeps(e, mustRange("A1"))
	if !ok || got != mustRange("B1:D1") {
		t.Fatalf("FindDeps(A1) = %v", got)
	}
}

// --- Extending above the head ------------------------------------------------

func TestExtendAboveHead(t *testing.T) {
	e := buildRun(t, RR, ref.AxisCol, dep("A2:B4", "C2"), dep("A3:B5", "C3"))
	merged := AddDep(e, dep("A1:B3", "C1"), RR, ref.AxisCol)
	if merged == nil {
		t.Fatal("extension above head rejected")
	}
	if merged.Prec != mustRange("A1:B5") || merged.Dep != mustRange("C1:C3") {
		t.Fatalf("merged = %v", merged)
	}
}

// --- Edge bookkeeping ---------------------------------------------------------

func TestEdgeCountAndString(t *testing.T) {
	s := singleEdge(dep("A1:B3", "C1"))
	if s.Count() != 1 {
		t.Fatal("single count")
	}
	if s.String() != "A1:B3 -> C1 [Single]" {
		t.Fatalf("string = %q", s.String())
	}
	e := fig4aEdge(t)
	if e.Count() != 4 {
		t.Fatal("run count")
	}
}

func TestPatternTypeString(t *testing.T) {
	names := map[PatternType]string{
		Single: "Single", RR: "RR", RF: "RF", FR: "FR", FF: "FF", RRChain: "RR-Chain",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
	if PatternType(99).String() != "Pattern(99)" {
		t.Error("unknown pattern string")
	}
}

func TestMetaTranspose(t *testing.T) {
	m := Meta{
		HRel: ref.Offset{DCol: 1, DRow: 2},
		TRel: ref.Offset{DCol: 3, DRow: 4},
		HFix: ref.Ref{Col: 5, Row: 6},
		TFix: ref.Ref{Col: 7, Row: 8},
		Dir:  DirPrev,
	}
	tt := m.T().T()
	if tt != m {
		t.Fatalf("double transpose changed meta: %+v", tt)
	}
}
