package core

import (
	"testing"

	"taco/internal/ref"
)

func TestExactCEMTrivial(t *testing.T) {
	if n, _ := ExactCEM(nil, DefaultOptions()); n != 0 {
		t.Fatalf("empty CEM = %d", n)
	}
	one := []Dependency{dep("A1:A3", "B1")}
	n, part := ExactCEM(one, DefaultOptions())
	if n != 1 || len(part) != 1 {
		t.Fatalf("singleton CEM = %d %v", n, part)
	}
}

func TestExactCEMRefusesLargeInput(t *testing.T) {
	deps := make([]Dependency, MaxExactCEM+1)
	for i := range deps {
		deps[i] = Dependency{Prec: mustRange("A1"), Dep: ref.Ref{Col: 2, Row: i + 1}}
	}
	if n, _ := ExactCEM(deps, DefaultOptions()); n != -1 {
		t.Fatalf("oversized CEM = %d, want -1", n)
	}
}

func TestExactCEMPerfectRun(t *testing.T) {
	// A pure FF run compresses to one edge.
	var deps []Dependency
	for row := 1; row <= 6; row++ {
		deps = append(deps, Dependency{Prec: mustRange("A1:B2"), Dep: ref.Ref{Col: 3, Row: row}})
	}
	n, part := ExactCEM(deps, DefaultOptions())
	if n != 1 || len(part[0]) != 6 {
		t.Fatalf("FF run CEM = %d %v", n, part)
	}
	if g := GreedyCEM(deps, DefaultOptions()); g != 1 {
		t.Fatalf("greedy = %d, want 1", g)
	}
}

func TestExactCEMMixedRuns(t *testing.T) {
	// Two interleavable runs: rows 1-3 slide (RR), rows 4-6 fixed (FF).
	var deps []Dependency
	for row := 1; row <= 3; row++ {
		deps = append(deps, Dependency{
			Prec: ref.RangeOf(ref.Ref{Col: 1, Row: row}, ref.Ref{Col: 1, Row: row + 1}),
			Dep:  ref.Ref{Col: 3, Row: row},
		})
	}
	for row := 4; row <= 6; row++ {
		deps = append(deps, Dependency{Prec: mustRange("B1:B9"), Dep: ref.Ref{Col: 3, Row: row}})
	}
	n, _ := ExactCEM(deps, DefaultOptions())
	if n != 2 {
		t.Fatalf("mixed CEM = %d, want 2", n)
	}
	if g := GreedyCEM(deps, DefaultOptions()); g != n {
		t.Fatalf("greedy = %d, exact = %d", g, n)
	}
}

func TestGreedyNeverBeatsExact(t *testing.T) {
	// Greedy is an upper bound on the optimum; check on assorted tiny
	// workloads, including ones where greedy may be suboptimal.
	workloads := [][]Dependency{
		fig8Deps(),
		fig2Deps(4),
		{
			dep("A1", "B1"), dep("A2", "B2"), dep("A3", "B3"),
			dep("A1", "C1"), dep("A1", "C2"),
		},
	}
	for i, deps := range workloads {
		if len(deps) > MaxExactCEM {
			continue
		}
		n, _ := ExactCEM(deps, DefaultOptions())
		g := GreedyCEM(deps, DefaultOptions())
		if g < n {
			t.Fatalf("workload %d: greedy %d beats exact %d (exact solver bug)", i, g, n)
		}
		if n <= 0 {
			t.Fatalf("workload %d: exact = %d", i, n)
		}
	}
}

func TestGapOneReduction(t *testing.T) {
	// Formulae on every other row with identical offsets: rows 1,3,5,7
	// reference the cell to the left.
	var deps []Dependency
	for _, row := range []int{1, 3, 5, 7} {
		deps = append(deps, Dependency{
			Prec: ref.CellRange(ref.Ref{Col: 1, Row: row}),
			Dep:  ref.Ref{Col: 2, Row: row},
		})
	}
	if got := GapOneReduction(deps); got != 3 {
		t.Fatalf("gap-one reduction = %d, want 3", got)
	}
	// Plain TACO cannot compress any of these (not adjacent).
	if g := Build(deps, DefaultOptions()); g.NumEdges() != 4 {
		t.Fatalf("TACO edges = %d, want 4", g.NumEdges())
	}
	// A contiguous run is NOT a gap-one run.
	deps = nil
	for row := 1; row <= 4; row++ {
		deps = append(deps, Dependency{
			Prec: ref.CellRange(ref.Ref{Col: 1, Row: row}),
			Dep:  ref.Ref{Col: 2, Row: row},
		})
	}
	if got := GapOneReduction(deps); got != 0 {
		t.Fatalf("contiguous run gap-one reduction = %d, want 0", got)
	}
}
