package core

import (
	"taco/internal/ref"
)

// BuildBulk compresses a dependency list with a streaming fast path. The
// general insertion algorithm (Alg. 2) pays an R-tree candidate search per
// dependency; when dependencies arrive in column-major load order — the way
// spreadsheet files are parsed (Sec. VI-A configures POI to load by
// columns) — runs of adjacent formula cells arrive consecutively, so the
// builder can extend open runs directly and only touch the R-trees once per
// *compressed* edge.
//
// The fast path only merges column-axis runs; dependencies it cannot merge
// are inserted as Single edges via the same indexes. Compression quality on
// column-major corpora matches the greedy builder (tests assert parity);
// the greedy builder remains the general path for out-of-order insertion
// and row-major sheets.
func BuildBulk(deps []Dependency, opts Options) *Graph {
	g := NewGraph(opts)
	if len(deps) == 0 {
		return g
	}

	// Group consecutive dependencies by formula cell, preserving order.
	type group struct {
		at   ref.Ref
		deps []Dependency
	}
	var groups []group
	for _, d := range deps {
		if n := len(groups); n > 0 && groups[n-1].at == d.Dep {
			groups[n-1].deps = append(groups[n-1].deps, d)
			continue
		}
		groups = append(groups, group{at: d.Dep, deps: []Dependency{d}})
	}

	var open []*Edge
	var prev ref.Ref
	havePrev := false
	flush := func() {
		for _, e := range open {
			g.insertEdge(e)
		}
		open = open[:0]
	}
	openFresh := func(ds []Dependency) {
		for _, d := range ds {
			open = append(open, singleEdge(d))
		}
	}

	for _, gr := range groups {
		adjacent := havePrev && gr.at.Col == prev.Col && gr.at.Row == prev.Row+1
		if !adjacent || len(gr.deps) != len(open) {
			flush()
			openFresh(gr.deps)
			prev, havePrev = gr.at, true
			continue
		}
		// Extend each open run with the matching reference, in order.
		for i, d := range gr.deps {
			if merged := g.extendRun(open[i], d); merged != nil {
				open[i] = merged
			} else {
				g.insertEdge(open[i])
				open[i] = singleEdge(d)
			}
		}
		prev = gr.at
	}
	flush()
	return g
}

// extendRun tries to extend one open run with a column-adjacent dependency,
// choosing the pattern with the greedy heuristics' priorities (special
// pattern first, then dollar cues, then declaration order).
func (g *Graph) extendRun(e *Edge, d Dependency) *Edge {
	if e.Pattern != Single {
		if merged := AddDep(e, d, e.Pattern, ref.AxisCol); merged != nil && g.allowed(merged) {
			return merged
		}
		return nil
	}
	var best *Edge
	bestScore := -1
	for _, p := range g.opts.patterns() {
		merged := AddDep(e, d, p, ref.AxisCol)
		if merged == nil || !g.allowed(merged) {
			continue
		}
		score := 0
		if merged.Pattern == RRChain {
			score += 1 << 8
		}
		if g.opts.UseDollarCues && cueMatch(merged.Pattern, d) {
			score += 1 << 4
		}
		if score > bestScore {
			best, bestScore = merged, score
		}
	}
	return best
}
