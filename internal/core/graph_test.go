package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"taco/internal/ref"
)

// --- Oracle: brute-force dependents/precedents over raw dependencies --------

// oracleDependents computes the transitive dependent cells of r by fixpoint
// iteration over the uncompressed dependency list.
func oracleDependents(deps []Dependency, r ref.Range) map[ref.Ref]bool {
	covered := func(g ref.Range, set map[ref.Ref]bool, seed ref.Range) bool {
		hit := false
		g.Cells(func(c ref.Ref) bool {
			if set[c] || seed.Contains(c) {
				hit = true
				return false
			}
			return true
		})
		return hit
	}
	out := map[ref.Ref]bool{}
	for changed := true; changed; {
		changed = false
		for _, d := range deps {
			if out[d.Dep] {
				continue
			}
			if covered(d.Prec, out, r) {
				out[d.Dep] = true
				changed = true
			}
		}
	}
	return out
}

// oraclePrecedents computes the transitive precedent cells of r. Cells of r
// itself are included when they are genuine precedents of other cells of r,
// matching the traversal's semantics.
func oraclePrecedents(deps []Dependency, r ref.Range) map[ref.Ref]bool {
	out := map[ref.Ref]bool{}
	inFrontier := func(c ref.Ref) bool { return out[c] || r.Contains(c) }
	for changed := true; changed; {
		changed = false
		for _, d := range deps {
			if !inFrontier(d.Dep) {
				continue
			}
			d.Prec.Cells(func(c ref.Ref) bool {
				if !out[c] {
					out[c] = true
					changed = true
				}
				return true
			})
		}
	}
	return out
}

func cellsOf(rs []ref.Range) map[ref.Ref]bool {
	out := map[ref.Ref]bool{}
	for _, g := range rs {
		g.Cells(func(c ref.Ref) bool {
			out[c] = true
			return true
		})
	}
	return out
}

func sameCells(t *testing.T, label string, got, want map[ref.Ref]bool) {
	t.Helper()
	for c := range want {
		if !got[c] {
			t.Errorf("%s: missing cell %v", label, c)
		}
	}
	for c := range got {
		if !want[c] {
			t.Errorf("%s: extra cell %v", label, c)
		}
	}
}

// --- Fig. 8: the worked compression example ---------------------------------

// fig8Deps is the setup of Fig. 8: C1:C3 contain =SUM($B$1:Bi)*A1 (an FR run
// to column B plus an FF run to A1), and D4 contains =SUM(B1:B4).
func fig8Deps() []Dependency {
	return []Dependency{
		{Prec: mustRange("B1:B1"), Dep: mustCell("C1"), HeadFixed: true},
		{Prec: mustRange("A1"), Dep: mustCell("C1")},
		{Prec: mustRange("B1:B2"), Dep: mustCell("C2"), HeadFixed: true},
		{Prec: mustRange("A1"), Dep: mustCell("C2")},
		{Prec: mustRange("B1:B3"), Dep: mustCell("C3"), HeadFixed: true},
		{Prec: mustRange("A1"), Dep: mustCell("C3")},
		{Prec: mustRange("B1:B4"), Dep: mustCell("D4")},
	}
}

func TestFig8Setup(t *testing.T) {
	g := Build(fig8Deps(), DefaultOptions())
	// Expect three edges: FR(B1:B3 -> C1:C3), FF(A1 -> C1:C3), Single(B1:B4 -> D4).
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	stats := g.PatternStats()
	if stats[FR].Edges != 1 || stats[FF].Edges != 1 || stats[Single].Edges != 1 {
		t.Fatalf("pattern stats = %+v", stats)
	}
}

func TestFig8InsertC4(t *testing.T) {
	// Inserting =SUM($B$1:B4) at C4: B1:B4 -> C4 can extend the FR run
	// (column-wise) or merge with D4 (row-wise). The heuristic picks
	// column-wise: B1:B4 -> C1:C4.
	g := Build(fig8Deps(), DefaultOptions())
	compressed := g.AddDependency(Dependency{
		Prec: mustRange("B1:B4"), Dep: mustCell("C4"), HeadFixed: true,
	})
	if !compressed {
		t.Fatal("C4 dependency was not compressed")
	}
	var fr *Edge
	g.Edges(func(e *Edge) bool {
		if e.Pattern == FR {
			fr = e
		}
		return true
	})
	if fr == nil || fr.Prec != mustRange("B1:B4") || fr.Dep != mustRange("C1:C4") {
		t.Fatalf("FR edge after insert = %v", fr)
	}
	// Finding dependents of B2 (the paper's example): C2:C4 via the FR edge
	// and D4 via the single edge.
	got := cellsOf(g.FindDependents(mustRange("B2")))
	want := cellsOf([]ref.Range{mustRange("C2:C4"), mustRange("D4")})
	sameCells(t, "fig8 dependents of B2", got, want)
}

// --- Fig. 2: the Enron IF-column example -------------------------------------

// fig2Deps builds the dependencies of the real-spreadsheet example: rows 3..n
// of column N hold =IF(Ai=A(i-1), N(i-1)+Mi, Mi), and N2 holds =M2.
func fig2Deps(n int) []Dependency {
	colA, colM, colN := 1, 13, 14
	deps := []Dependency{
		{Prec: ref.CellRange(ref.Ref{Col: colM, Row: 2}), Dep: ref.Ref{Col: colN, Row: 2}},
	}
	for i := 3; i <= n; i++ {
		d := ref.Ref{Col: colN, Row: i}
		deps = append(deps,
			Dependency{Prec: ref.CellRange(ref.Ref{Col: colA, Row: i}), Dep: d},
			Dependency{Prec: ref.CellRange(ref.Ref{Col: colA, Row: i - 1}), Dep: d},
			Dependency{Prec: ref.CellRange(ref.Ref{Col: colN, Row: i - 1}), Dep: d},
			Dependency{Prec: ref.CellRange(ref.Ref{Col: colM, Row: i}), Dep: d},
		)
	}
	return deps
}

func TestFig2Compression(t *testing.T) {
	n := 50
	deps := fig2Deps(n)
	g := Build(deps, DefaultOptions())
	// The messy multi-reference column decomposes into a handful of
	// compressed runs, dramatically fewer edges than dependencies.
	if g.NumDependencies() != len(deps) {
		t.Fatalf("dependencies = %d, want %d", g.NumDependencies(), len(deps))
	}
	if g.NumEdges() > 8 {
		t.Fatalf("edges = %d, want <= 8 for the Fig. 2 column", g.NumEdges())
	}
	// The N(i-1) references form an RR-Chain.
	if st := g.PatternStats(); st[RRChain].Edges == 0 {
		t.Fatalf("expected an RR-Chain edge, stats = %+v", st)
	}
	// Differential check against the oracle from several cells.
	for _, q := range []string{"A2", "M2", "N2", "A25", "M49"} {
		got := cellsOf(g.FindDependents(mustRange(q)))
		want := map[ref.Ref]bool{}
		for c := range oracleDependents(deps, mustRange(q)) {
			want[c] = true
		}
		sameCells(t, "fig2 dependents of "+q, got, want)
	}
}

// --- Randomised differential testing -----------------------------------------

// genRandomDeps builds a random but DAG-shaped dependency set: formulae in
// later columns reference earlier columns, mixing autofilled runs (RR / FF /
// FR / chain) with scattered one-off references and run breaks.
func genRandomDeps(rng *rand.Rand) []Dependency {
	var deps []Dependency
	rows := 12 + rng.Intn(20)
	// Column 1..2 are data. Columns 3..7 hold formula runs.
	for col := 3; col <= 7; col++ {
		kind := rng.Intn(5)
		runStart := 1 + rng.Intn(3)
		runEnd := rows - rng.Intn(3)
		for row := runStart; row <= runEnd; row++ {
			// Randomly break runs to create Single edges and fragments.
			if rng.Intn(12) == 0 {
				continue
			}
			d := ref.Ref{Col: col, Row: row}
			switch kind {
			case 0: // RR sliding window over a previous column
				src := 1 + rng.Intn(col-1)
				deps = append(deps, Dependency{
					Prec: ref.RangeOf(ref.Ref{Col: src, Row: row}, ref.Ref{Col: src, Row: row + 2}),
					Dep:  d,
				})
			case 1: // FF fixed lookup
				deps = append(deps, Dependency{
					Prec:      mustRange("A1:B2"),
					Dep:       d,
					HeadFixed: true, TailFixed: true,
				})
			case 2: // FR cumulative total over a previous column
				src := 1 + rng.Intn(col-1)
				deps = append(deps, Dependency{
					Prec:      ref.RangeOf(ref.Ref{Col: src, Row: 1}, ref.Ref{Col: src, Row: row}),
					Dep:       d,
					HeadFixed: true,
				})
			case 3: // chain within the column
				if row == runStart {
					continue
				}
				deps = append(deps, Dependency{
					Prec: ref.CellRange(ref.Ref{Col: col, Row: row - 1}),
					Dep:  d,
				})
			default: // derived column (in-row RR)
				src := 1 + rng.Intn(col-1)
				deps = append(deps, Dependency{
					Prec: ref.CellRange(ref.Ref{Col: src, Row: row}),
					Dep:  d,
				})
			}
		}
	}
	return deps
}

func TestDifferentialDependents(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		deps := genRandomDeps(rng)
		g := Build(deps, DefaultOptions())
		if g.NumDependencies() != len(deps) {
			t.Fatalf("seed %d: dependency count %d != %d", seed, g.NumDependencies(), len(deps))
		}
		// Query several random cells and ranges.
		for q := 0; q < 6; q++ {
			col := 1 + rng.Intn(7)
			row := 1 + rng.Intn(25)
			r := ref.CellRange(ref.Ref{Col: col, Row: row})
			if q%3 == 0 {
				r = ref.RangeOf(ref.Ref{Col: col, Row: row}, ref.Ref{Col: col, Row: row + 3})
			}
			got := cellsOf(g.FindDependents(r))
			// The traversal may legitimately include cells of r itself if
			// some dependency's dep falls inside r's own dependents; the
			// oracle excludes seed cells, so drop them from got as well
			// only when they are not real dependents. Simplest: compare
			// both ways on the oracle set.
			want := oracleDependents(deps, r)
			sameCells(t, "dependents", got, want)

			gotP := cellsOf(g.FindPrecedents(r))
			wantP := oraclePrecedents(deps, r)
			sameCells(t, "precedents", gotP, wantP)
		}
	}
}

func TestDifferentialAfterClear(t *testing.T) {
	for seed := int64(100); seed < 115; seed++ {
		rng := rand.New(rand.NewSource(seed))
		deps := genRandomDeps(rng)
		g := Build(deps, DefaultOptions())

		// Clear a random column segment of formula cells.
		col := 3 + rng.Intn(5)
		top := 1 + rng.Intn(10)
		clearRange := ref.RangeOf(ref.Ref{Col: col, Row: top}, ref.Ref{Col: col, Row: top + 4})
		g.Clear(clearRange)

		var remaining []Dependency
		for _, d := range deps {
			if !clearRange.Contains(d.Dep) {
				remaining = append(remaining, d)
			}
		}
		if g.NumDependencies() != len(remaining) {
			t.Fatalf("seed %d: after clear %d deps, want %d", seed, g.NumDependencies(), len(remaining))
		}
		for q := 0; q < 4; q++ {
			r := ref.CellRange(ref.Ref{Col: 1 + rng.Intn(7), Row: 1 + rng.Intn(25)})
			got := cellsOf(g.FindDependents(r))
			want := oracleDependents(remaining, r)
			sameCells(t, "dependents after clear", got, want)
		}
	}
}

// --- Variant and heuristic behaviour -----------------------------------------

func TestInRowVariant(t *testing.T) {
	// A derived column (in-row RR) compresses under TACO-InRow...
	var deps []Dependency
	for row := 1; row <= 20; row++ {
		deps = append(deps, Dependency{
			Prec: ref.CellRange(ref.Ref{Col: 1, Row: row}),
			Dep:  ref.Ref{Col: 2, Row: row},
		})
	}
	g := Build(deps, InRowOptions())
	if g.NumEdges() != 1 {
		t.Fatalf("in-row derived column edges = %d, want 1", g.NumEdges())
	}
	// ...but a sliding window (different rows) does not.
	deps = nil
	for row := 1; row <= 20; row++ {
		deps = append(deps, Dependency{
			Prec: ref.RangeOf(ref.Ref{Col: 1, Row: row}, ref.Ref{Col: 1, Row: row + 2}),
			Dep:  ref.Ref{Col: 2, Row: row},
		})
	}
	g = Build(deps, InRowOptions())
	if g.NumEdges() != 20 {
		t.Fatalf("in-row sliding window edges = %d, want 20 (uncompressed)", g.NumEdges())
	}
	// TACO-Full compresses both.
	if g := Build(deps, DefaultOptions()); g.NumEdges() != 1 {
		t.Fatalf("full sliding window edges = %d, want 1", g.NumEdges())
	}
}

func TestChainPreferredOverRR(t *testing.T) {
	// A chain is RR-compatible; the heuristic must select RR-Chain.
	var deps []Dependency
	for row := 2; row <= 30; row++ {
		deps = append(deps, Dependency{
			Prec: ref.CellRange(ref.Ref{Col: 1, Row: row - 1}),
			Dep:  ref.Ref{Col: 1, Row: row},
		})
	}
	g := Build(deps, DefaultOptions())
	st := g.PatternStats()
	if st[RRChain].Edges != 1 || st[RR].Edges != 0 {
		t.Fatalf("stats = %+v, want one RR-Chain edge", st)
	}
}

func TestColumnPreferredOverRow(t *testing.T) {
	// A 2x2 block of formulae all referencing the same fixed range: the
	// second row's cells can compress column-wise (under the first row) or
	// row-wise (next to each other). Column-wise must win.
	deps := []Dependency{
		{Prec: mustRange("A1"), Dep: mustCell("C1"), HeadFixed: true, TailFixed: true},
		{Prec: mustRange("A1"), Dep: mustCell("D1"), HeadFixed: true, TailFixed: true},
		{Prec: mustRange("A1"), Dep: mustCell("C2"), HeadFixed: true, TailFixed: true},
		{Prec: mustRange("A1"), Dep: mustCell("D2"), HeadFixed: true, TailFixed: true},
	}
	g := Build(deps, DefaultOptions())
	// After inserts: C1+D1 merge row-wise (only option), then C2 extends C1
	// column-wise... but C1 is already in a row edge. The greedy outcome
	// depends on candidate availability; we assert full compression into at
	// most 2 edges and column preference for the last insert.
	if g.NumEdges() > 2 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	var axes []ref.Axis
	g.Edges(func(e *Edge) bool {
		if e.Pattern != Single {
			axes = append(axes, e.Axis)
		}
		return true
	})
	if len(axes) == 0 {
		t.Fatal("no compressed edges")
	}
}

func TestDollarCueTieBreak(t *testing.T) {
	// B1:B1 -> C1 followed by B1:B2 -> C2 is both FR (fixed head B1) and...
	// only FR actually. Construct a genuinely ambiguous pair instead:
	// prec is a single cell B5 for both C1 and C2: that is FF (same prec).
	// And RR? rel differs. RF: hRel differs. FR: tRel differs. So FF only.
	// True ambiguity needs prec where multiple conditions coincide:
	// C1 -> B1:B5, C2 -> B2:B5: RF (fixed tail B5, hRel (-1,0)). Also RR? tRel
	// differs. So unique again. The genuinely ambiguous case is a chain
	// (RR vs RR-Chain), covered above; here we check cue scoring flips the
	// choice between two single-edge candidates. C2 inserted between two
	// runs: above C1 (forming RF with cue) and left B2 (forming FF without).
	deps := []Dependency{
		{Prec: mustRange("B1:B5"), Dep: mustCell("C1"), TailFixed: true},
	}
	g := Build(deps, DefaultOptions())
	g.AddDependency(Dependency{Prec: mustRange("B2:B5"), Dep: mustCell("C2"), TailFixed: true})
	st := g.PatternStats()
	if st[RF].Edges != 1 {
		t.Fatalf("stats = %+v, want RF edge", st)
	}
}

func TestGraphSizesAndStats(t *testing.T) {
	deps := fig2Deps(100)
	g := Build(deps, DefaultOptions())
	s := g.Stats()
	if s.Dependencies != len(deps) {
		t.Fatalf("stats deps = %d", s.Dependencies)
	}
	if s.Edges >= s.Dependencies/10 {
		t.Fatalf("poor compression: %d edges for %d deps", s.Edges, s.Dependencies)
	}
	if s.Vertices == 0 || s.Vertices > 2*s.Edges {
		t.Fatalf("vertices = %d", s.Vertices)
	}
}

func TestCountCells(t *testing.T) {
	n := CountCells([]ref.Range{mustRange("A1:A10"), mustRange("B1")})
	if n != 11 {
		t.Fatalf("CountCells = %d", n)
	}
}

func TestFindDependentsEmptyGraph(t *testing.T) {
	g := NewGraph(DefaultOptions())
	if got := g.FindDependents(mustRange("A1")); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestClearEntireRun(t *testing.T) {
	deps := fig2Deps(30)
	g := Build(deps, DefaultOptions())
	g.Clear(ref.RangeOf(ref.Ref{Col: 14, Row: 1}, ref.Ref{Col: 14, Row: 1000}))
	if g.NumDependencies() != 0 {
		t.Fatalf("deps after clearing column N = %d", g.NumDependencies())
	}
	if g.NumEdges() != 0 {
		t.Fatalf("edges after clearing = %d", g.NumEdges())
	}
}

func TestUpdateModelledAsClearPlusInsert(t *testing.T) {
	deps := fig2Deps(20)
	g := Build(deps, DefaultOptions())
	before := g.NumDependencies()
	// Update N10 to =M10 (single reference).
	target := ref.Ref{Col: 14, Row: 10}
	g.Clear(ref.CellRange(target))
	g.AddDependency(Dependency{Prec: ref.CellRange(ref.Ref{Col: 13, Row: 10}), Dep: target})
	if g.NumDependencies() != before-3 {
		t.Fatalf("deps after update = %d, want %d", g.NumDependencies(), before-3)
	}
	// The graph still answers queries consistently with the new state.
	var remaining []Dependency
	for _, d := range deps {
		if d.Dep != target {
			remaining = append(remaining, d)
		}
	}
	remaining = append(remaining, Dependency{Prec: ref.CellRange(ref.Ref{Col: 13, Row: 10}), Dep: target})
	got := cellsOf(g.FindDependents(mustRange("M2")))
	want := oracleDependents(remaining, mustRange("M2"))
	sameCells(t, "after update", got, want)
}

func TestDeterministicBuild(t *testing.T) {
	deps := genRandomDeps(rand.New(rand.NewSource(5)))
	a := Build(deps, DefaultOptions())
	b := Build(deps, DefaultOptions())
	sig := func(g *Graph) []string {
		var out []string
		g.Edges(func(e *Edge) bool {
			out = append(out, e.String())
			return true
		})
		sort.Strings(out)
		return out
	}
	sa, sb := sig(a), sig(b)
	if len(sa) != len(sb) {
		t.Fatalf("non-deterministic edge count: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("non-deterministic edge %d: %s vs %s", i, sa[i], sb[i])
		}
	}
}

// oracleDirectPrecedents is the one-hop oracle: the union of raw precedent
// ranges whose dependency targets exactly c.
func oracleDirectPrecedents(deps []Dependency, c ref.Ref) map[ref.Ref]bool {
	out := map[ref.Ref]bool{}
	for _, d := range deps {
		if d.Dep != c {
			continue
		}
		d.Prec.Cells(func(p ref.Ref) bool {
			out[p] = true
			return true
		})
	}
	return out
}

// TestDirectPrecedents checks the one-hop query against the raw dependency
// list for every formula cell of random graphs: per single-cell query, the
// union of the returned ranges must be exactly the cells that cell
// references — no transitive chain members (the RR-Chain case), nothing
// missing. This is the contract the engine's wavefront scheduler levels on.
func TestDirectPrecedents(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		deps := genRandomDeps(rand.New(rand.NewSource(seed)))
		g := Build(deps, DefaultOptions())
		cells := map[ref.Ref]bool{}
		for _, d := range deps {
			cells[d.Dep] = true
		}
		for c := range cells {
			got := map[ref.Ref]bool{}
			g.DirectPrecedents(ref.CellRange(c), func(p ref.Range) bool {
				p.Cells(func(x ref.Ref) bool {
					got[x] = true
					return true
				})
				return true
			})
			sameCells(t, fmt.Sprintf("seed %d cell %v", seed, c), got, oracleDirectPrecedents(deps, c))
		}
	}
}

// TestDirectPrecedentsEach: the batched one-hop enumeration must yield, for
// every dependent cell of the query range, exactly the precedent cells the
// per-cell DirectPrecedents query yields — the equivalence the engine's
// batched wavefront linker rests on. The edge pre-filter contract is checked
// too: every per-cell precedent window is contained in the union span the
// filter saw (so a filter keyed on the union can never skip a live edge),
// and a filter that rejects everything suppresses all pairs.
func TestDirectPrecedentsEach(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		deps := genRandomDeps(rand.New(rand.NewSource(seed)))
		g := Build(deps, DefaultOptions())
		cells := map[ref.Ref]bool{}
		bounds := ref.CellRange(deps[0].Dep)
		for _, d := range deps {
			cells[d.Dep] = true
			bounds.Head.Col = min(bounds.Head.Col, d.Dep.Col)
			bounds.Head.Row = min(bounds.Head.Row, d.Dep.Row)
			bounds.Tail.Col = max(bounds.Tail.Col, d.Dep.Col)
			bounds.Tail.Row = max(bounds.Tail.Row, d.Dep.Row)
		}

		// Batched enumeration over the whole dependent bounding box, with a
		// recording filter that accepts every edge.
		got := map[ref.Ref]map[ref.Ref]bool{}
		var spans []ref.Range
		g.DirectPrecedentsEach(bounds,
			func(_, span ref.Range) bool {
				spans = append(spans, span)
				return true
			},
			func(dep ref.Ref, prec ref.Range) bool {
				set := got[dep]
				if set == nil {
					set = map[ref.Ref]bool{}
					got[dep] = set
				}
				prec.Cells(func(x ref.Ref) bool {
					set[x] = true
					return true
				})
				// Union soundness: the per-cell window must sit inside some
				// span the filter was shown.
				inSpan := false
				for _, s := range spans {
					if s.ContainsRange(prec) {
						inSpan = true
						break
					}
				}
				if !inSpan {
					t.Fatalf("seed %d: window %v for %v outside every filter span %v",
						seed, prec, dep, spans)
				}
				return true
			})

		for c := range cells {
			want := oracleDirectPrecedents(deps, c)
			gotc := got[c]
			if gotc == nil {
				gotc = map[ref.Ref]bool{}
			}
			sameCells(t, fmt.Sprintf("seed %d cell %v", seed, c), gotc, want)
		}
		for dep := range got {
			if !cells[dep] {
				t.Fatalf("seed %d: pair for %v, which is not a dependent cell", seed, dep)
			}
		}

		// A filter that rejects every edge yields no pairs at all.
		g.DirectPrecedentsEach(bounds,
			func(_, _ ref.Range) bool { return false },
			func(dep ref.Ref, prec ref.Range) bool {
				t.Fatalf("seed %d: pair (%v, %v) leaked past a rejecting filter", seed, dep, prec)
				return false
			})
	}
}

// TestPatternRunSpans: compressed dependent runs are reported clipped to the
// query, Single edges are skipped, and fn can stop the enumeration.
func TestPatternRunSpans(t *testing.T) {
	var deps []Dependency
	// A column of =A{r}*2 formulas in C: compresses into one RR run C1:C20.
	for r := 1; r <= 20; r++ {
		deps = append(deps, Dependency{
			Prec: ref.CellRange(ref.Ref{Col: 1, Row: r}),
			Dep:  ref.Ref{Col: 3, Row: r},
		})
	}
	// One lone dependency far away: stays a Single edge.
	deps = append(deps, Dependency{Prec: mustRange("A100"), Dep: mustCell("E100")})
	g := Build(deps, DefaultOptions())

	collect := func(q ref.Range) (spans []ref.Range) {
		g.PatternRunSpans(q, func(span ref.Range, p PatternType) bool {
			if p == Single {
				t.Fatalf("Single edge reported as a pattern span: %v", span)
			}
			spans = append(spans, span)
			return true
		})
		return spans
	}

	full := collect(mustRange("C1:C20"))
	if len(full) != 1 || full[0] != mustRange("C1:C20") {
		t.Fatalf("full query: spans = %v", full)
	}
	// Clipping: a partial query returns the intersection only.
	part := collect(mustRange("C5:C12"))
	if len(part) != 1 || part[0] != mustRange("C5:C12") {
		t.Fatalf("partial query: spans = %v", part)
	}
	// The Single edge's dependent yields nothing.
	if got := collect(mustRange("E100")); len(got) != 0 {
		t.Fatalf("Single dependent reported spans: %v", got)
	}
	// Early stop is honoured.
	calls := 0
	g.PatternRunSpans(mustRange("A1:Z200"), func(ref.Range, PatternType) bool {
		calls++
		return false
	})
	if calls > 1 {
		t.Fatalf("enumeration continued after fn returned false (%d calls)", calls)
	}
}
