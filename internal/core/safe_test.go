package core

import (
	"math/rand"
	"sync"
	"testing"

	"taco/internal/ref"
)

func TestSafeGraphConcurrentReadersAndWriters(t *testing.T) {
	s := NewSafeGraph(DefaultOptions())
	// Seed with a few runs.
	for _, d := range fig2Deps(100) {
		s.AddDependency(d)
	}
	var wg sync.WaitGroup
	// Writers: keep inserting and clearing distinct columns.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			col := 20 + w
			for i := 0; i < 200; i++ {
				s.AddDependency(Dependency{
					Prec: ref.CellRange(ref.Ref{Col: 1, Row: i + 1}),
					Dep:  ref.Ref{Col: col, Row: i + 1},
				})
				if i%50 == 49 {
					s.Clear(ref.RangeOf(ref.Ref{Col: col, Row: 1}, ref.Ref{Col: col, Row: i + 1}))
				}
			}
		}(w)
	}
	// Readers: query while writes proceed.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				q := ref.CellRange(ref.Ref{Col: 1 + rng.Intn(15), Row: 1 + rng.Intn(100)})
				s.FindDependents(q)
				s.FindPrecedents(q)
				_ = s.Stats()
			}
		}(int64(r))
	}
	wg.Wait()
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Dependencies == 0 {
		t.Fatal("graph lost all dependencies")
	}
}

func TestWrapGraph(t *testing.T) {
	g := Build(fig2Deps(20), DefaultOptions())
	s := WrapGraph(g)
	if s.Stats().Edges != g.NumEdges() {
		t.Fatal("wrap changed the graph")
	}
	if len(s.PatternStats()) == 0 {
		t.Fatal("pattern stats empty")
	}
}
