package core

import (
	"io"
	"sync"

	"taco/internal/ref"
)

// SafeGraph wraps a Graph with a read-write lock so concurrent readers
// (dependents/precedents queries from UI threads, audit tools) can proceed
// in parallel while writers (edits) serialise — the access pattern of an
// interactive spreadsheet host.
type SafeGraph struct {
	mu sync.RWMutex
	g  *Graph
}

// NewSafeGraph returns a thread-safe graph with the given options.
func NewSafeGraph(opts Options) *SafeGraph {
	return &SafeGraph{g: NewGraph(opts)}
}

// WrapGraph makes an existing graph thread-safe. The caller must not keep
// using the wrapped graph directly.
func WrapGraph(g *Graph) *SafeGraph { return &SafeGraph{g: g} }

// AddDependency inserts one dependency under the write lock.
func (s *SafeGraph) AddDependency(d Dependency) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.g.AddDependency(d)
}

// Clear removes the dependencies of formula cells in rng under the write
// lock.
func (s *SafeGraph) Clear(rng ref.Range) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.g.Clear(rng)
}

// FindDependents queries under the read lock.
func (s *SafeGraph) FindDependents(r ref.Range) []ref.Range {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.g.FindDependents(r)
}

// FindPrecedents queries under the read lock.
func (s *SafeGraph) FindPrecedents(r ref.Range) []ref.Range {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.g.FindPrecedents(r)
}

// Stats returns size statistics under the read lock.
func (s *SafeGraph) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.g.Stats()
}

// PatternStats returns per-pattern statistics under the read lock.
func (s *SafeGraph) PatternStats() map[PatternType]PatternStat {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.g.PatternStats()
}

// WriteSnapshot serialises the graph under the read lock.
func (s *SafeGraph) WriteSnapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.g.WriteSnapshot(w)
}

// Check validates invariants under the read lock.
func (s *SafeGraph) Check() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.g.Check()
}
