package core

import (
	"math/rand"
	"sort"
	"testing"

	"taco/internal/ref"
)

// TestRowMajorInsertionOrder rebuilds the random workloads with the
// dependencies shuffled into row-major and fully random orders: compression
// quality may differ, but query results must not.
func TestRowMajorInsertionOrder(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		deps := genRandomDeps(rng)

		rowMajor := append([]Dependency(nil), deps...)
		sort.SliceStable(rowMajor, func(i, j int) bool {
			a, b := rowMajor[i].Dep, rowMajor[j].Dep
			if a.Row != b.Row {
				return a.Row < b.Row
			}
			return a.Col < b.Col
		})
		shuffled := append([]Dependency(nil), deps...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

		base := Build(deps, DefaultOptions())
		for name, variant := range map[string][]Dependency{"row-major": rowMajor, "shuffled": shuffled} {
			g := Build(variant, DefaultOptions())
			if g.NumDependencies() != base.NumDependencies() {
				t.Fatalf("seed %d %s: lost dependencies", seed, name)
			}
			if err := g.Check(); err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
			for q := 0; q < 5; q++ {
				r := ref.CellRange(ref.Ref{Col: 1 + rng.Intn(7), Row: 1 + rng.Intn(25)})
				want := cellsOf(base.FindDependents(r))
				got := cellsOf(g.FindDependents(r))
				sameCells(t, name+" dependents", got, want)
			}
		}
	}
}

// TestInterleavedExtension grows a run alternating above and below.
func TestInterleavedExtension(t *testing.T) {
	g := NewGraph(DefaultOptions())
	// Rows inserted: 10, 11, 9, 12, 8, 13 ... all referencing left cell.
	rows := []int{10, 11, 9, 12, 8, 13, 7, 14}
	for _, row := range rows {
		g.AddDependency(Dependency{
			Prec: ref.CellRange(ref.Ref{Col: 1, Row: row}),
			Dep:  ref.Ref{Col: 2, Row: row},
		})
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want one RR run", g.NumEdges())
	}
	var e *Edge
	g.Edges(func(x *Edge) bool { e = x; return true })
	if e.Dep != ref.RangeOf(ref.Ref{Col: 2, Row: 7}, ref.Ref{Col: 2, Row: 14}) {
		t.Fatalf("dep run = %v", e.Dep)
	}
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestClearSpanningMultipleEdges clears a 2D block overlapping several runs.
func TestClearSpanningMultipleEdges(t *testing.T) {
	g := NewGraph(DefaultOptions())
	// Three adjacent derived columns B, C, D over data column A.
	for col := 2; col <= 4; col++ {
		for row := 1; row <= 20; row++ {
			g.AddDependency(Dependency{
				Prec: ref.CellRange(ref.Ref{Col: 1, Row: row}),
				Dep:  ref.Ref{Col: col, Row: row},
			})
		}
	}
	before := g.NumDependencies()
	// Clear the block B5:D10 (6 rows x 3 columns).
	g.Clear(ref.RangeOf(ref.Ref{Col: 2, Row: 5}, ref.Ref{Col: 4, Row: 10}))
	if got := g.NumDependencies(); got != before-18 {
		t.Fatalf("deps after block clear = %d, want %d", got, before-18)
	}
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	// Each column is now split into two runs.
	if g.NumEdges() != 6 {
		t.Fatalf("edges = %d, want 6", g.NumEdges())
	}
	// Cleared cells are no longer dependents.
	got := cellsOf(g.FindDependents(mustRange("A7")))
	if len(got) != 0 {
		t.Fatalf("dependents of A7 = %v", got)
	}
	got = cellsOf(g.FindDependents(mustRange("A4")))
	if len(got) != 3 {
		t.Fatalf("dependents of A4 = %v", got)
	}
}

// TestMultiColumnQueryRange queries dependents of a 2D input range.
func TestMultiColumnQueryRange(t *testing.T) {
	deps := fig2Deps(30)
	g := Build(deps, DefaultOptions())
	want := oracleDependents(deps, mustRange("A5:M6"))
	got := cellsOf(g.FindDependents(mustRange("A5:M6")))
	sameCells(t, "2D query", got, want)
}

// TestOverlappingRangeVertices reproduces the Fig. 3 subtlety: B2:B3
// overlaps the cells B2 and B3 that appear as separate vertices.
func TestOverlappingRangeVertices(t *testing.T) {
	deps := []Dependency{
		{Prec: mustRange("A1:A3"), Dep: mustCell("B1")},
		{Prec: mustRange("A1:A3"), Dep: mustCell("B2")},
		{Prec: mustRange("B1"), Dep: mustCell("C1")},
		{Prec: mustRange("B3"), Dep: mustCell("C1")},
		{Prec: mustRange("B2:B3"), Dep: mustCell("C2")},
	}
	g := Build(deps, DefaultOptions())
	got := cellsOf(g.FindDependents(mustRange("A1")))
	want := cellsOf([]ref.Range{mustRange("B1"), mustRange("B2"), mustRange("C1"), mustRange("C2")})
	sameCells(t, "fig3 dependents", got, want)
	// B3 is a pure value: its dependents are C1 (direct) and C2 (via range).
	got = cellsOf(g.FindDependents(mustRange("B3")))
	want = cellsOf([]ref.Range{mustRange("C1"), mustRange("C2")})
	sameCells(t, "fig3 B3 dependents", got, want)
}

// TestWideRangeSinglePrec exercises a precedent spanning many columns with a
// compressed run, ensuring column clipping works in findDeps.
func TestWideRangeSinglePrec(t *testing.T) {
	var deps []Dependency
	for row := 1; row <= 10; row++ {
		deps = append(deps, Dependency{
			Prec: ref.RangeOf(ref.Ref{Col: 1, Row: row}, ref.Ref{Col: 8, Row: row + 1}),
			Dep:  ref.Ref{Col: 10, Row: row},
		})
	}
	g := Build(deps, DefaultOptions())
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	// A query hitting only column H of the windows still finds the right
	// dependents.
	got := cellsOf(g.FindDependents(mustRange("H5")))
	want := oracleDependents(deps, mustRange("H5"))
	sameCells(t, "wide prec", got, want)
}

// TestTraversalStatsChainVsNoChain shows the instrumentation distinguishing
// the chain pathology.
func TestTraversalStatsChainVsNoChain(t *testing.T) {
	var deps []Dependency
	for row := 2; row <= 400; row++ {
		deps = append(deps, Dependency{
			Prec: ref.CellRange(ref.Ref{Col: 1, Row: row - 1}),
			Dep:  ref.Ref{Col: 1, Row: row},
		})
	}
	withChain := Build(deps, DefaultOptions())
	_, st := withChain.FindDependentsStats(mustRange("A1"))
	if st.MeanAccessesPerEdge() > 3 {
		t.Fatalf("chain pattern: %.1f accesses/edge", st.MeanAccessesPerEdge())
	}
	noChain := Build(deps, Options{
		Patterns:      []PatternType{RR, RF, FR, FF},
		UseDollarCues: true,
	})
	_, st2 := noChain.FindDependentsStats(mustRange("A1"))
	if st2.EdgeAccesses <= 10*st.EdgeAccesses {
		t.Fatalf("RR-only accesses %d not dominating chain accesses %d",
			st2.EdgeAccesses, st.EdgeAccesses)
	}
}

// TestAddDependencyReturnValue distinguishes compressed vs single inserts.
func TestAddDependencyReturnValue(t *testing.T) {
	g := NewGraph(DefaultOptions())
	if g.AddDependency(dep("A1", "B1")) {
		t.Fatal("first insert cannot be compressed")
	}
	if !g.AddDependency(dep("A2", "B2")) {
		t.Fatal("adjacent insert should compress")
	}
	if g.AddDependency(dep("Z9:Z10", "B9")) {
		t.Fatal("distant insert should not compress")
	}
}
