package core

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

func depsEqualAsSets(t *testing.T, a, b []Dependency) {
	t.Helper()
	key := func(d Dependency) string {
		return d.Prec.String() + "->" + d.Dep.String()
	}
	as := make([]string, len(a))
	bs := make([]string, len(b))
	for i, d := range a {
		as[i] = key(d)
	}
	for i, d := range b {
		bs[i] = key(d)
	}
	sort.Strings(as)
	sort.Strings(bs)
	if len(as) != len(bs) {
		t.Fatalf("dependency counts differ: %d vs %d", len(as), len(bs))
	}
	for i := range as {
		if as[i] != bs[i] {
			t.Fatalf("dependency %d differs: %s vs %s", i, as[i], bs[i])
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		deps := genRandomDeps(rand.New(rand.NewSource(seed)))
		g := Build(deps, DefaultOptions())

		var buf bytes.Buffer
		if err := g.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := ReadSnapshot(&buf, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if loaded.NumEdges() != g.NumEdges() || loaded.NumDependencies() != g.NumDependencies() {
			t.Fatalf("seed %d: loaded (%d,%d) vs (%d,%d)", seed,
				loaded.NumEdges(), loaded.NumDependencies(), g.NumEdges(), g.NumDependencies())
		}
		if err := loaded.Check(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Losslessness: both decompress to the same dependency set.
		depsEqualAsSets(t, g.Dependencies(), loaded.Dependencies())

		// Queries agree.
		for q := 0; q < 5; q++ {
			r := mustRange("B3")
			a := cellsOf(g.FindDependents(r))
			b := cellsOf(loaded.FindDependents(r))
			sameCells(t, "snapshot dependents", b, a)
		}
		// The loaded graph remains mutable.
		loaded.Clear(mustRange("C1:C5"))
		if err := loaded.Check(); err != nil {
			t.Fatalf("seed %d after clear: %v", seed, err)
		}
	}
}

func TestSnapshotDeterministicBytes(t *testing.T) {
	deps := fig2Deps(30)
	var a, b bytes.Buffer
	if err := Build(deps, DefaultOptions()).WriteSnapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := Build(deps, DefaultOptions()).WriteSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("snapshot bytes are not deterministic")
	}
}

func TestSnapshotIsCompact(t *testing.T) {
	// The snapshot of a compressed graph is far smaller than one edge
	// record per dependency would be.
	deps := fig2Deps(2000)
	g := Build(deps, DefaultOptions())
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 64*g.NumEdges()+len(snapshotMagic)+8 {
		t.Fatalf("snapshot %d bytes for %d edges", buf.Len(), g.NumEdges())
	}
	if buf.Len() > len(deps) { // ~8000 deps vs a few hundred bytes
		t.Fatalf("snapshot %d bytes not compact vs %d deps", buf.Len(), len(deps))
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("WRONG!"),
		[]byte("TACOG1"),                // truncated count
		append([]byte("TACOG1"), 5),     // count without edges
		append([]byte("TACOG1"), 1, 99), // unknown pattern
		append([]byte("TACOG1"), 1, 0),  // truncated edge
	}
	for i, data := range cases {
		if _, err := ReadSnapshot(bytes.NewReader(data), DefaultOptions()); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestCheckEdgeCatchesCorruption(t *testing.T) {
	e := fig4aEdge(t)
	if err := CheckEdge(e); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	// Corrupt the metadata: the precedent no longer matches.
	bad := *e
	bad.Meta.HRel.DRow++
	if err := CheckEdge(&bad); err == nil {
		t.Fatal("corrupted RR edge accepted")
	}
	// A 2D dependent run is invalid.
	bad = *e
	bad.Dep.Tail.Col++
	if err := CheckEdge(&bad); err == nil {
		t.Fatal("2D dependent run accepted")
	}
	// A Single edge with a range dependent is invalid.
	s := singleEdge(dep("A1:B2", "C1"))
	s.Dep = mustRange("C1:C2")
	if err := CheckEdge(s); err == nil {
		t.Fatal("multi-cell Single accepted")
	}
}

func TestGraphCheckOnRandomWorkloads(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		deps := genRandomDeps(rng)
		g := Build(deps, DefaultOptions())
		if err := g.Check(); err != nil {
			t.Fatalf("seed %d after build: %v", seed, err)
		}
		g.Clear(mustRange("D2:D9"))
		if err := g.Check(); err != nil {
			t.Fatalf("seed %d after clear: %v", seed, err)
		}
	}
}

func TestDependenciesDecompression(t *testing.T) {
	deps := fig2Deps(40)
	g := Build(deps, DefaultOptions())
	depsEqualAsSets(t, deps, g.Dependencies())
}

func TestZigZag(t *testing.T) {
	for _, v := range []int{0, 1, -1, 13, -13, 1 << 20, -(1 << 20)} {
		if got := unzig(zig(v)); got != v {
			t.Errorf("unzig(zig(%d)) = %d", v, got)
		}
	}
}
