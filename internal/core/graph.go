package core

import (
	"slices"
	"sync"

	"taco/internal/ref"
	"taco/internal/rtree"
)

// Options configures a TACO graph.
type Options struct {
	// Patterns lists the enabled compression patterns in priority order.
	// Nil enables all patterns (RR-Chain, RR, RF, FR, FF) — RR-Chain first
	// because the paper's heuristic prefers the special pattern over its
	// general case.
	Patterns []PatternType
	// UseDollarCues enables the `$` dollar-sign tie-breaking heuristic of
	// Sec. IV-A.
	UseDollarCues bool
	// InRowOnly restricts compression to the TACO-InRow variant of
	// Sec. VI-B: only column runs whose formulae reference ranges in their
	// own row (derived columns) are compressed, using RR.
	InRowOnly bool
}

// DefaultOptions returns the full TACO configuration used in the paper's
// TACO-Full experiments.
func DefaultOptions() Options {
	return Options{UseDollarCues: true}
}

// InRowOptions returns the TACO-InRow configuration.
func InRowOptions() Options {
	return Options{Patterns: []PatternType{RR}, InRowOnly: true}
}

var allPatterns = []PatternType{RRChain, RR, RF, FR, FF}

func (o Options) patterns() []PatternType {
	if o.Patterns == nil {
		return allPatterns
	}
	return o.Patterns
}

// Graph is a TACO compressed formula graph. It supports adding dependencies
// one at a time (compressing greedily per Alg. 2), querying dependents and
// precedents directly on the compressed representation (Alg. 3), and
// incremental maintenance when formula cells are cleared or updated.
//
// Graph is not safe for concurrent mutation; wrap it with a lock if needed.
type Graph struct {
	opts   Options
	edges  map[*Edge]struct{}
	byPrec *rtree.Tree[*Edge] // indexed by Edge.Prec
	byDep  *rtree.Tree[*Edge] // indexed by Edge.Dep
	// verts refcounts the distinct ranges appearing as an edge endpoint, and
	// ndeps sums Edge.Count() — both maintained on every edge insert/delete
	// so Stats reads are O(1) instead of rescanning all edges (the serving
	// layer reports graph stats on hot paths).
	verts map[ref.Range]int
	ndeps int
	// gen counts structural mutations. Callers cache derived artefacts (an
	// encoded snapshot section, say) and revalidate with Gen.
	gen uint64
	// scratch pools per-traversal state (visited tree, touched set, BFS
	// queue). Concurrent read-only traversals each take their own scratch, so
	// queries stay safe under a shared read lock.
	scratch sync.Pool
}

// NewGraph returns an empty TACO graph with the given options.
func NewGraph(opts Options) *Graph {
	return &Graph{
		opts:   opts,
		edges:  make(map[*Edge]struct{}),
		byPrec: rtree.New[*Edge](),
		byDep:  rtree.New[*Edge](),
		verts:  make(map[ref.Range]int),
	}
}

// Build constructs a compressed graph from a list of dependencies.
func Build(deps []Dependency, opts Options) *Graph {
	g := NewGraph(opts)
	for _, d := range deps {
		g.AddDependency(d)
	}
	return g
}

// NumEdges returns |E|, the number of (compressed) edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// NumDependencies returns |E'|, the number of underlying uncompressed
// dependencies represented by the graph.
func (g *Graph) NumDependencies() int { return g.ndeps }

// NumVertices returns |V|, the number of distinct ranges appearing as a
// precedent or dependent of some edge.
func (g *Graph) NumVertices() int { return len(g.verts) }

// Edges calls fn for every edge. Iteration order is unspecified.
func (g *Graph) Edges(fn func(*Edge) bool) {
	for e := range g.edges {
		if !fn(e) {
			return
		}
	}
}

// noteInsert maintains the cached vertex and dependency counts for an edge
// entering the graph. Every insertion path (incremental, bulk, snapshot
// restore) must pair it with the edge becoming visible in g.edges.
func (g *Graph) noteInsert(e *Edge) {
	g.verts[e.Prec]++
	if e.Prec != e.Dep {
		g.verts[e.Dep]++
	}
	g.ndeps += e.Count()
	g.gen++
}

func (g *Graph) noteDelete(e *Edge) {
	decref := func(r ref.Range) {
		if g.verts[r]--; g.verts[r] <= 0 {
			delete(g.verts, r)
		}
	}
	decref(e.Prec)
	if e.Prec != e.Dep {
		decref(e.Dep)
	}
	g.ndeps -= e.Count()
	g.gen++
}

// Gen returns the structural-mutation counter: unchanged Gen means an
// unchanged edge set.
func (g *Graph) Gen() uint64 { return g.gen }

func (g *Graph) insertEdge(e *Edge) {
	g.edges[e] = struct{}{}
	g.byPrec.Insert(e.Prec, e)
	g.byDep.Insert(e.Dep, e)
	g.noteInsert(e)
}

func (g *Graph) deleteEdge(e *Edge) {
	delete(g.edges, e)
	g.byPrec.Delete(e.Prec, func(x *Edge) bool { return x == e })
	g.byDep.Delete(e.Dep, func(x *Edge) bool { return x == e })
	g.noteDelete(e)
}

// candidate is one valid way to compress an inserted dependency.
type candidate struct {
	merged *Edge
	old    *Edge
	axis   ref.Axis
}

// AddDependency inserts one dependency into the compressed graph, greedily
// compressing it into an adjacent edge when a predefined pattern applies
// (Alg. 2). It reports whether the dependency was compressed into an
// existing edge (false means it was inserted as a Single edge).
func (g *Graph) AddDependency(d Dependency) bool {
	cands := g.findCandidates(d)
	if len(cands) > 0 {
		best := g.selectCandidate(cands, d)
		g.deleteEdge(best.old)
		g.insertEdge(best.merged)
		return true
	}
	g.insertEdge(singleEdge(d))
	return false
}

// findCandidates shifts the inserted formula cell one step in all four
// directions, finds the edges whose dependent run touches the shifted cell,
// and keeps those that genCompEdges validates.
func (g *Graph) findCandidates(d Dependency) []candidate {
	type probe struct {
		off  ref.Offset
		axis ref.Axis
	}
	probes := [4]probe{
		{ref.Offset{DCol: 0, DRow: -1}, ref.AxisCol},
		{ref.Offset{DCol: 0, DRow: 1}, ref.AxisCol},
		{ref.Offset{DCol: -1, DRow: 0}, ref.AxisRow},
		{ref.Offset{DCol: 1, DRow: 0}, ref.AxisRow},
	}
	var cands []candidate
	seen := map[*Edge]struct{}{}
	for _, pr := range probes {
		shifted := ref.CellRange(d.Dep.Add(pr.off))
		if !shifted.Head.Valid() {
			continue
		}
		g.byDep.Search(shifted, func(_ ref.Range, e *Edge) bool {
			if _, dup := seen[e]; dup {
				return true
			}
			seen[e] = struct{}{}
			for _, merged := range g.genCompEdges(e, d, pr.axis) {
				cands = append(cands, candidate{merged: merged, old: e, axis: pr.axis})
			}
			return true
		})
	}
	return cands
}

// genCompEdges tries to compress d into candidate edge e along axis,
// returning the valid merged edges (the paper's genCompEdges).
func (g *Graph) genCompEdges(e *Edge, d Dependency, axis ref.Axis) []*Edge {
	var out []*Edge
	if e.Pattern == Single {
		for _, p := range g.opts.patterns() {
			if merged := AddDep(e, d, p, axis); merged != nil && g.allowed(merged) {
				out = append(out, merged)
			}
		}
		return out
	}
	if merged := AddDep(e, d, e.Pattern, axis); merged != nil && g.allowed(merged) {
		out = append(out, merged)
	}
	return out
}

// allowed applies variant restrictions (TACO-InRow).
func (g *Graph) allowed(e *Edge) bool {
	if !g.opts.InRowOnly {
		return true
	}
	return e.Pattern == RR && e.Axis == ref.AxisCol &&
		e.Meta.HRel.DRow == 0 && e.Meta.TRel.DRow == 0
}

// selectCandidate applies the paper's heuristics, in order: column-wise
// compression over row-wise; a special pattern over its general case
// (RR-Chain over RR); then the dollar-sign cues of the inserted formula,
// when available. Ties resolve to the largest resulting edge, then stably.
func (g *Graph) selectCandidate(cands []candidate, d Dependency) candidate {
	score := func(c candidate) int {
		s := 0
		if c.axis == ref.AxisCol {
			s += 1 << 12
		}
		if c.merged.Pattern == RRChain {
			s += 1 << 8
		}
		if g.opts.UseDollarCues && cueMatch(c.merged.Pattern, d) {
			s += 1 << 4
		}
		return s
	}
	slices.SortStableFunc(cands, func(a, b candidate) int {
		if sa, sb := score(a), score(b); sa != sb {
			return sb - sa
		}
		return b.merged.Count() - a.merged.Count()
	})
	return cands[0]
}

// cueMatch reports whether the pattern agrees with the autofill rule implied
// by the dependency's `$` markers: no anchors -> RR, tail anchored -> RF,
// head anchored -> FR, both anchored -> FF.
func cueMatch(p PatternType, d Dependency) bool {
	switch {
	case !d.HeadFixed && !d.TailFixed:
		return p == RR || p == RRChain
	case !d.HeadFixed && d.TailFixed:
		return p == RF
	case d.HeadFixed && !d.TailFixed:
		return p == FR
	default:
		return p == FF
	}
}

// FindDependents returns the set of ranges transitively dependent on r,
// computed directly on the compressed graph with the modified BFS of Alg. 3.
// The returned ranges are disjoint and cover exactly the dependent cells.
func (g *Graph) FindDependents(r ref.Range) []ref.Range {
	out, _ := g.traverse(r, true)
	return out
}

// FindPrecedents returns the set of ranges that r transitively depends on —
// the dual traversal, walking edges from dependents to precedents.
func (g *Graph) FindPrecedents(r ref.Range) []ref.Range {
	out, _ := g.traverse(r, false)
	return out
}

// DirectPrecedents calls fn with the one-hop precedent ranges of r: for each
// compressed edge whose dependent run overlaps r, the union of the direct
// precedent windows of the overlapping cells. Unlike FindPrecedents it does
// not traverse transitively — in particular RR-Chain edges contribute the
// per-cell precedent span, not the whole upstream chain — and it does not
// deduplicate: overlapping edges yield overlapping ranges, and fn may see
// the same cell more than once. For a single-cell r the ranges are exactly
// the cells r's formula references. A recalculation scheduler uses it to
// restrict precedent lookups to the dirty set: one R-tree probe per dirty
// cell, no transitive closure. fn returning false stops the walk. Safe for
// concurrent use with other read-only queries.
func (g *Graph) DirectPrecedents(r ref.Range, fn func(ref.Range) bool) {
	g.byDep.Search(r, func(_ ref.Range, e *Edge) bool {
		clipped, ok := r.Intersect(e.Dep)
		if !ok {
			return true
		}
		var p ref.Range
		if e.Axis == ref.AxisRow {
			p = directPrecsCol(e.canon(), clipped.T()).T()
		} else {
			p = directPrecsCol(e.canon(), clipped)
		}
		return fn(p)
	})
}

// DirectPrecedentsEach is the per-cell variant of DirectPrecedents: for
// every compressed edge whose dependent run overlaps r, fn is called once
// per overlapping dependent cell with that cell's one-hop precedent window.
// The windows are exactly what DirectPrecedents reports for the single-cell
// query, but the index is searched — and the edge decoded — once for all of
// r: a recalculation scheduler links a contiguous segment of dirty cells
// with one probe instead of one per cell, which is where compression pays
// on the scheduling side (a compressed run's dependents are enumerable by
// pattern arithmetic alone).
//
// edge, when non-nil, is an edge-level pre-filter: it receives the
// overlapping dependent span and the union precedent window of that span
// (exactly DirectPrecedents' answer for it) before any per-cell work;
// returning false skips the edge's enumeration entirely. A scheduler passes
// a does-this-window-touch-the-dirty-set test so edges feeding only on
// settled data cost one window check instead of per-cell arithmetic.
//
// Cells of r covered by no edge are not reported; duplicates across
// overlapping edges are, like DirectPrecedents. fn returning false stops
// the walk.
func (g *Graph) DirectPrecedentsEach(r ref.Range, edge func(depSpan, precSpan ref.Range) bool, fn func(dep ref.Ref, prec ref.Range) bool) {
	g.byDep.Search(r, func(_ ref.Range, e *Edge) bool {
		clipped, ok := r.Intersect(e.Dep)
		if !ok {
			return true
		}
		c := e.canon()
		if e.Axis == ref.AxisRow {
			clipped = clipped.T()
		}
		if edge != nil {
			span := directPrecsCol(c, clipped)
			depSpan := clipped
			if e.Axis == ref.AxisRow {
				span, depSpan = span.T(), depSpan.T()
			}
			if !edge(depSpan, span) {
				return true
			}
		}
		for col := clipped.Head.Col; col <= clipped.Tail.Col; col++ {
			for row := clipped.Head.Row; row <= clipped.Tail.Row; row++ {
				cell := ref.Range{Head: ref.Ref{Col: col, Row: row}, Tail: ref.Ref{Col: col, Row: row}}
				dep, prec := cell.Head, directPrecsCol(c, cell)
				if e.Axis == ref.AxisRow {
					dep = ref.Ref{Col: dep.Row, Row: dep.Col}
					prec = prec.T()
				}
				if !fn(dep, prec) {
					return false
				}
			}
		}
		return true
	})
}

// PatternRunSpans reports, for every compressed (non-Single) edge whose
// dependent run intersects r, the intersection and the edge's pattern type.
// This is the compression-for-speed seam the vectorized evaluator reads: a
// compressed dependent run is exactly a set of cells sharing one formula
// shape modulo relative offsets, so the engine can restrict its pattern-run
// detection to these spans instead of fingerprinting every dirty cell.
// Spans from different edges may overlap; fn returning false stops the
// enumeration. Single edges carry no sharing evidence and are skipped.
func (g *Graph) PatternRunSpans(r ref.Range, fn func(span ref.Range, p PatternType) bool) {
	g.byDep.Search(r, func(_ ref.Range, e *Edge) bool {
		if e.Pattern == Single {
			return true
		}
		clipped, ok := r.Intersect(e.Dep)
		if !ok {
			return true
		}
		return fn(clipped, e.Pattern)
	})
}

// TraversalStats instruments one traversal for the Sec. IV-D cost analysis:
// the complexity of Alg. 3 depends on whether each compressed edge is
// accessed at most once (Case 1) or repeatedly (Case 2). The paper reports
// the average accesses per touched edge is <= 7 for 98% of its query tests,
// which is why Case 2's worst case does not bite in practice.
type TraversalStats struct {
	// EdgeAccesses counts findDep/findPrec invocations.
	EdgeAccesses int
	// DistinctEdges counts the edges touched at least once.
	DistinctEdges int
}

// MeanAccessesPerEdge returns EdgeAccesses / DistinctEdges (0 when no edge
// was touched).
func (t TraversalStats) MeanAccessesPerEdge() float64 {
	if t.DistinctEdges == 0 {
		return 0
	}
	return float64(t.EdgeAccesses) / float64(t.DistinctEdges)
}

// FindDependentsStats is FindDependents with traversal instrumentation.
func (g *Graph) FindDependentsStats(r ref.Range) ([]ref.Range, TraversalStats) {
	return g.traverse(r, true)
}

// traverseScratch is the reusable per-traversal state. One traversal's
// allocations (visited index nodes, touched set, BFS queue) survive into the
// next via the graph's pool, which keeps the query hot path allocation-free
// in steady state.
type traverseScratch struct {
	touched map[*Edge]struct{}
	visited *rtree.Tree[struct{}]
	queue   []ref.Range
	overlap []ref.Range
}

func (g *Graph) getScratch() *traverseScratch {
	if s, ok := g.scratch.Get().(*traverseScratch); ok {
		return s
	}
	return &traverseScratch{
		touched: make(map[*Edge]struct{}),
		visited: rtree.New[struct{}](),
	}
}

func (g *Graph) putScratch(s *traverseScratch) {
	clear(s.touched)
	s.visited.Reset()
	s.queue = s.queue[:0]
	s.overlap = s.overlap[:0]
	g.scratch.Put(s)
}

func (g *Graph) traverse(r ref.Range, forward bool) ([]ref.Range, TraversalStats) {
	var result []ref.Range
	var stats TraversalStats
	s := g.getScratch()
	defer g.putScratch(s)
	index := g.byPrec
	if !forward {
		index = g.byDep
	}
	s.queue = append(s.queue, r)
	for head := 0; head < len(s.queue); head++ {
		cur := s.queue[head]
		index.Search(cur, func(_ ref.Range, e *Edge) bool {
			stats.EdgeAccesses++
			if _, seen := s.touched[e]; !seen {
				s.touched[e] = struct{}{}
				stats.DistinctEdges++
			}
			var next ref.Range
			var ok bool
			if forward {
				next, ok = FindDeps(e, cur)
			} else {
				next, ok = FindPrecs(e, cur)
			}
			if !ok {
				return true
			}
			// Keep only the parts not yet visited.
			s.overlap = s.overlap[:0]
			s.visited.Search(next, func(seen ref.Range, _ struct{}) bool {
				s.overlap = append(s.overlap, seen)
				return true
			})
			for _, part := range next.SubtractAll(s.overlap) {
				s.visited.Insert(part, struct{}{})
				result = append(result, part)
				s.queue = append(s.queue, part)
			}
			return true
		})
	}
	return result, stats
}

// CountCells sums the sizes of a set of disjoint ranges — the number of
// dependent (or precedent) cells a traversal found.
func CountCells(rs []ref.Range) int {
	n := 0
	for _, r := range rs {
		n += r.Size()
	}
	return n
}

// Clear removes the dependencies of every formula cell inside s — the
// maintenance operation of Sec. IV-C (an update is modelled as Clear followed
// by AddDependency for the new formula's references).
func (g *Graph) Clear(s ref.Range) {
	var relevant []*Edge
	g.byDep.Search(s, func(_ ref.Range, e *Edge) bool {
		relevant = append(relevant, e)
		return true
	})
	for _, e := range relevant {
		replacements := RemoveDeps(e, s)
		if len(replacements) == 1 && replacements[0] == e {
			continue // no overlap after clipping
		}
		g.deleteEdge(e)
		for _, ne := range replacements {
			g.insertEdge(ne)
		}
	}
}

// PatternStat aggregates compression effectiveness per pattern (Table V).
type PatternStat struct {
	// Edges is the number of compressed edges using the pattern.
	Edges int
	// Reduced is the number of uncompressed edges eliminated by the pattern:
	// sum over its edges of (|E'_i| - 1).
	Reduced int
}

// PatternStats returns per-pattern compression statistics.
func (g *Graph) PatternStats() map[PatternType]PatternStat {
	out := make(map[PatternType]PatternStat, numPatterns)
	for e := range g.edges {
		st := out[e.Pattern]
		st.Edges++
		st.Reduced += e.Count() - 1
		out[e.Pattern] = st
	}
	return out
}

// Stats summarises the graph for the size experiments (Tables II-IV).
type Stats struct {
	Vertices     int
	Edges        int
	Dependencies int
}

// Stats returns the graph's size statistics.
func (g *Graph) Stats() Stats {
	return Stats{
		Vertices:     g.NumVertices(),
		Edges:        g.NumEdges(),
		Dependencies: g.NumDependencies(),
	}
}
