package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"taco/internal/ref"
)

// Property-based tests (testing/quick) on the pattern algebra. Each property
// generates a random valid compressed run and checks an invariant the O(1)
// query math must satisfy against brute-force expansion.

// randomRun generates a random compressed edge of the given pattern along a
// random axis, together with its expanded dependencies.
func randomRun(rng *rand.Rand, p PatternType) (*Edge, []Dependency) {
	axis := ref.AxisCol
	if rng.Intn(2) == 0 {
		axis = ref.AxisRow
	}
	runLen := 2 + rng.Intn(8)
	// Dependent run placed far enough from the sheet edge that offsets stay
	// valid.
	base := ref.Ref{Col: 10 + rng.Intn(10), Row: 20 + rng.Intn(10)}

	var deps []Dependency
	switch p {
	case RR, RRChain:
		var h, t ref.Offset
		if p == RRChain {
			h = ref.Offset{DCol: 0, DRow: -1}
			if rng.Intn(2) == 0 {
				h = ref.Offset{DCol: 0, DRow: 1}
			}
			if axis == ref.AxisRow {
				h = h.T() // chains run along the axis
			}
			t = h
		} else {
			h = ref.Offset{DCol: -1 - rng.Intn(4), DRow: -rng.Intn(4)}
			t = ref.Offset{DCol: h.DCol + rng.Intn(3), DRow: h.DRow + rng.Intn(4)}
		}
		for i := 0; i < runLen; i++ {
			cell := advance(base, axis, i)
			deps = append(deps, Dependency{
				Prec: ref.RangeOf(cell.Add(h), cell.Add(t)),
				Dep:  cell,
			})
		}
	case RF:
		h := ref.Offset{DCol: -2, DRow: 0}
		// Tail fixed at/after the last window head.
		lastHead := advance(base, axis, runLen-1).Add(hAxis(h, axis))
		tfix := ref.Ref{Col: lastHead.Col + rng.Intn(3), Row: lastHead.Row + rng.Intn(3)}
		for i := 0; i < runLen; i++ {
			cell := advance(base, axis, i)
			deps = append(deps, Dependency{
				Prec: ref.RangeOf(cell.Add(hAxis(h, axis)), tfix),
				Dep:  cell,
			})
		}
	case FR:
		t := ref.Offset{DCol: -2, DRow: 0}
		firstTail := base.Add(hAxis(t, axis))
		hfix := ref.Ref{Col: maxI(1, firstTail.Col-rng.Intn(3)), Row: maxI(1, firstTail.Row-rng.Intn(3))}
		for i := 0; i < runLen; i++ {
			cell := advance(base, axis, i)
			deps = append(deps, Dependency{
				Prec: ref.RangeOf(hfix, cell.Add(hAxis(t, axis))),
				Dep:  cell,
			})
		}
	case FF:
		prec := ref.RangeOf(
			ref.Ref{Col: 1 + rng.Intn(5), Row: 1 + rng.Intn(5)},
			ref.Ref{Col: 3 + rng.Intn(5), Row: 3 + rng.Intn(5)})
		for i := 0; i < runLen; i++ {
			deps = append(deps, Dependency{Prec: prec, Dep: advance(base, axis, i)})
		}
	}
	e := singleEdge(deps[0])
	for _, d := range deps[1:] {
		merged := AddDep(e, d, p, axis)
		if merged == nil {
			return nil, nil // generator produced an incompressible run; skip
		}
		e = merged
	}
	return e, deps
}

// advance moves i steps along the axis.
func advance(base ref.Ref, axis ref.Axis, i int) ref.Ref {
	if axis == ref.AxisCol {
		return ref.Ref{Col: base.Col, Row: base.Row + i}
	}
	return ref.Ref{Col: base.Col + i, Row: base.Row}
}

// hAxis orients an offset written for the column axis.
func hAxis(o ref.Offset, axis ref.Axis) ref.Offset {
	if axis == ref.AxisCol {
		return o
	}
	return o.T()
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

var quickPatterns = []PatternType{RR, RF, FR, FF, RRChain}

func quickCfg(seed int64) *quick.Config {
	rng := rand.New(rand.NewSource(seed))
	return &quick.Config{
		MaxCount: 400,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			p := quickPatterns[rng.Intn(len(quickPatterns))]
			e, deps := randomRun(rng, p)
			for e == nil {
				e, deps = randomRun(rng, p)
			}
			vals[0] = reflect.ValueOf(e)
			vals[1] = reflect.ValueOf(deps)
			vals[2] = reflect.ValueOf(rng.Int63())
		},
	}
}

// PropertyFindDepsMatchesExpansion: for a random query sub-range of the
// precedent, FindDeps returns exactly the dependent cells whose expanded
// precedent overlaps the query — except RR-Chain, whose contract is the
// transitive closure within the edge.
func TestQuickFindDepsMatchesExpansion(t *testing.T) {
	prop := func(e *Edge, deps []Dependency, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomSubRange(rng, e.Prec)
		got, ok := FindDeps(e, q)
		want := map[ref.Ref]bool{}
		if e.Pattern == RRChain {
			transitiveChainDeps(deps, q, want)
		} else {
			for _, d := range deps {
				if d.Prec.Overlaps(q) {
					want[d.Dep] = true
				}
			}
		}
		if !ok {
			return len(want) == 0
		}
		gotCells := map[ref.Ref]bool{}
		got.Cells(func(c ref.Ref) bool {
			gotCells[c] = true
			return true
		})
		return mapsEqual(gotCells, want)
	}
	if err := quick.Check(prop, quickCfg(101)); err != nil {
		t.Error(err)
	}
}

func transitiveChainDeps(deps []Dependency, q ref.Range, out map[ref.Ref]bool) {
	frontier := func(c ref.Ref) bool { return out[c] || q.Contains(c) }
	for changed := true; changed; {
		changed = false
		for _, d := range deps {
			if out[d.Dep] {
				continue
			}
			hit := false
			d.Prec.Cells(func(c ref.Ref) bool {
				if frontier(c) {
					hit = true
					return false
				}
				return true
			})
			if hit {
				out[d.Dep] = true
				changed = true
			}
		}
	}
}

// PropertyFindPrecsCoversExactly: FindPrecs of a dependent sub-run equals
// the union of the expanded precedents (transitive closure for chains).
func TestQuickFindPrecsMatchesExpansion(t *testing.T) {
	prop := func(e *Edge, deps []Dependency, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSubRange(rng, e.Dep)
		got, ok := FindPrecs(e, s)
		want := map[ref.Ref]bool{}
		if e.Pattern == RRChain {
			transitiveChainPrecs(deps, s, want)
		} else {
			for _, d := range deps {
				if s.Contains(d.Dep) {
					d.Prec.Cells(func(c ref.Ref) bool {
						want[c] = true
						return true
					})
				}
			}
		}
		if !ok {
			return len(want) == 0
		}
		gotCells := map[ref.Ref]bool{}
		got.Cells(func(c ref.Ref) bool {
			gotCells[c] = true
			return true
		})
		return mapsEqual(gotCells, want)
	}
	if err := quick.Check(prop, quickCfg(202)); err != nil {
		t.Error(err)
	}
}

func transitiveChainPrecs(deps []Dependency, s ref.Range, out map[ref.Ref]bool) {
	frontier := func(c ref.Ref) bool { return out[c] || s.Contains(c) }
	for changed := true; changed; {
		changed = false
		for _, d := range deps {
			if !frontier(d.Dep) {
				continue
			}
			d.Prec.Cells(func(c ref.Ref) bool {
				if !out[c] {
					out[c] = true
					changed = true
				}
				return true
			})
		}
	}
}

// PropertyRemovePreservesRest: removing a sub-run yields edges that together
// decompress to exactly the dependencies outside the removed range, and each
// piece satisfies the invariant checker.
func TestQuickRemoveDepsPreservesRest(t *testing.T) {
	prop := func(e *Edge, deps []Dependency, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSubRange(rng, e.Dep)
		pieces := RemoveDeps(e, s)
		var got []Dependency
		for _, p := range pieces {
			if CheckEdge(p) != nil {
				return false
			}
			got = append(got, edgeDependencies(p)...)
		}
		want := map[string]int{}
		for _, d := range deps {
			if !s.Contains(d.Dep) {
				want[d.Prec.String()+"->"+d.Dep.String()]++
			}
		}
		if len(got) != lenSum(want) {
			return false
		}
		for _, d := range got {
			k := d.Prec.String() + "->" + d.Dep.String()
			if want[k] == 0 {
				return false
			}
			want[k]--
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(303)); err != nil {
		t.Error(err)
	}
}

// PropertySnapshotIdempotent: write -> read -> write produces identical
// bytes and an equivalent graph, for graphs holding one random run.
func TestQuickSnapshotStable(t *testing.T) {
	prop := func(e *Edge, deps []Dependency, _ int64) bool {
		g := Build(deps, DefaultOptions())
		var buf1 bytes.Buffer
		if g.WriteSnapshot(&buf1) != nil {
			return false
		}
		first := append([]byte(nil), buf1.Bytes()...)
		loaded, err := ReadSnapshot(&buf1, DefaultOptions())
		if err != nil {
			return false
		}
		var buf2 bytes.Buffer
		if loaded.WriteSnapshot(&buf2) != nil {
			return false
		}
		return bytes.Equal(first, buf2.Bytes())
	}
	cfg := quickCfg(404)
	cfg.MaxCount = 150
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// PropertyEdgeDecompression: a built run decompresses to its source
// dependencies exactly.
func TestQuickEdgeDecompression(t *testing.T) {
	prop := func(e *Edge, deps []Dependency, _ int64) bool {
		got := edgeDependencies(e)
		if len(got) != len(deps) {
			return false
		}
		want := map[string]int{}
		for _, d := range deps {
			want[d.Prec.String()+"->"+d.Dep.String()]++
		}
		for _, d := range got {
			k := d.Prec.String() + "->" + d.Dep.String()
			if want[k] == 0 {
				return false
			}
			want[k]--
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(505)); err != nil {
		t.Error(err)
	}
}

func randomSubRange(rng *rand.Rand, g ref.Range) ref.Range {
	c1 := g.Head.Col + rng.Intn(g.Cols())
	c2 := g.Head.Col + rng.Intn(g.Cols())
	r1 := g.Head.Row + rng.Intn(g.Rows())
	r2 := g.Head.Row + rng.Intn(g.Rows())
	return ref.RangeOf(ref.Ref{Col: c1, Row: r1}, ref.Ref{Col: c2, Row: r2})
}

func mapsEqual(a, b map[ref.Ref]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func lenSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
