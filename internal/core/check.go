package core

import (
	"errors"
	"fmt"

	"taco/internal/ref"
)

// This file implements the structural invariant checker. Snapshot loading
// validates edges with it, and the property-based tests drive it against
// randomly built graphs. The invariants are exactly what the pattern
// algebra's O(1) queries rely on; an edge violating them would silently
// return wrong dependents.

// ErrInvariant reports a violated edge or graph invariant.
var ErrInvariant = errors.New("core: invariant violation")

// CheckEdge validates the structural invariants of a single edge:
//
//   - ranges are well-formed and inside the sheet space;
//   - a compressed dependent run is one cell wide along its axis;
//   - the precedent corners agree with the metadata (e.g. for RR,
//     Prec = [Dep.Head+HRel .. Dep.Tail+TRel]);
//   - RR-Chain's precedent is the dependent run shifted by one cell.
func CheckEdge(e *Edge) error {
	if !e.Prec.Valid() || !e.Dep.Valid() {
		return fmt.Errorf("%w: invalid ranges in %v", ErrInvariant, e)
	}
	if e.Pattern == Single {
		if !e.Dep.IsCell() {
			return fmt.Errorf("%w: Single edge with multi-cell dependent %v", ErrInvariant, e)
		}
		return nil
	}
	c := e.canon()
	if c.Dep.Cols() != 1 {
		return fmt.Errorf("%w: compressed run wider than one cell: %v", ErrInvariant, e)
	}
	if c.Dep.Rows() < 2 {
		return fmt.Errorf("%w: compressed run with fewer than two cells: %v", ErrInvariant, e)
	}
	switch e.Pattern {
	case RR:
		wantHead := c.Dep.Head.Add(c.Meta.HRel)
		wantTail := c.Dep.Tail.Add(c.Meta.TRel)
		if c.Prec.Head != wantHead || c.Prec.Tail != wantTail {
			return fmt.Errorf("%w: RR precedent %v does not match meta (want %v:%v)",
				ErrInvariant, c.Prec, wantHead, wantTail)
		}
	case RRChain:
		want := ref.Offset{DCol: 0, DRow: -1}
		if c.Meta.Dir == DirNext {
			want = ref.Offset{DCol: 0, DRow: 1}
		}
		if c.Meta.HRel != want || c.Meta.TRel != want {
			return fmt.Errorf("%w: RR-Chain offsets %v/%v do not match direction",
				ErrInvariant, c.Meta.HRel, c.Meta.TRel)
		}
		if c.Prec != c.Dep.Shift(want) {
			return fmt.Errorf("%w: RR-Chain precedent %v is not the shifted run", ErrInvariant, c.Prec)
		}
	case RF:
		if c.Prec.Head != c.Dep.Head.Add(c.Meta.HRel) || c.Prec.Tail != c.Meta.TFix {
			return fmt.Errorf("%w: RF precedent %v does not match meta", ErrInvariant, c.Prec)
		}
		// Every window must be a valid rectangle, including the last one.
		last := c.Dep.Tail.Add(c.Meta.HRel)
		if last.Col > c.Meta.TFix.Col || last.Row > c.Meta.TFix.Row {
			return fmt.Errorf("%w: RF window inverts before the run ends: %v", ErrInvariant, e)
		}
	case FR:
		if c.Prec.Head != c.Meta.HFix || c.Prec.Tail != c.Dep.Tail.Add(c.Meta.TRel) {
			return fmt.Errorf("%w: FR precedent %v does not match meta", ErrInvariant, c.Prec)
		}
		first := c.Dep.Head.Add(c.Meta.TRel)
		if first.Col < c.Meta.HFix.Col || first.Row < c.Meta.HFix.Row {
			return fmt.Errorf("%w: FR window inverts before the run starts: %v", ErrInvariant, e)
		}
	case FF:
		if c.Prec.Head != c.Meta.HFix || c.Prec.Tail != c.Meta.TFix {
			return fmt.Errorf("%w: FF precedent %v does not match meta", ErrInvariant, c.Prec)
		}
	default:
		return fmt.Errorf("%w: unknown pattern %v", ErrInvariant, e.Pattern)
	}
	return nil
}

// Check validates every edge of the graph plus the index invariants: each
// edge is present in both R-trees under exactly its own ranges, and the
// dependency multiset is consistent with edge counts.
func (g *Graph) Check() error {
	for e := range g.edges {
		if err := CheckEdge(e); err != nil {
			return err
		}
		if !treeHas(g.byPrec, e.Prec, e) {
			return fmt.Errorf("%w: edge %v missing from precedent index", ErrInvariant, e)
		}
		if !treeHas(g.byDep, e.Dep, e) {
			return fmt.Errorf("%w: edge %v missing from dependent index", ErrInvariant, e)
		}
	}
	// The indexes must not contain stale entries.
	if g.byPrec.Len() != len(g.edges) || g.byDep.Len() != len(g.edges) {
		return fmt.Errorf("%w: index sizes %d/%d, edges %d",
			ErrInvariant, g.byPrec.Len(), g.byDep.Len(), len(g.edges))
	}
	return nil
}

func treeHas(t interface {
	Search(ref.Range, func(ref.Range, *Edge) bool)
}, r ref.Range, e *Edge) bool {
	found := false
	t.Search(r, func(got ref.Range, x *Edge) bool {
		if x == e && got == r {
			found = true
			return false
		}
		return true
	})
	return found
}

// Dependencies reconstructs the full uncompressed dependency list the graph
// represents — decompression, used by tests to verify losslessness and by
// tools that export the graph.
func (g *Graph) Dependencies() []Dependency {
	var out []Dependency
	for e := range g.edges {
		out = append(out, edgeDependencies(e)...)
	}
	return out
}

// edgeDependencies expands one edge into its underlying dependencies.
func edgeDependencies(e *Edge) []Dependency {
	if e.Pattern == Single {
		return []Dependency{{
			Prec: e.Prec, Dep: e.Dep.Head,
			HeadFixed: e.HeadFixed, TailFixed: e.TailFixed,
		}}
	}
	c := e.canon()
	var out []Dependency
	for row := c.Dep.Head.Row; row <= c.Dep.Tail.Row; row++ {
		cell := ref.Ref{Col: c.Dep.Head.Col, Row: row}
		prec := directPrecsCol(c, ref.CellRange(cell))
		d := Dependency{Prec: prec, Dep: cell}
		if e.Axis == ref.AxisRow {
			d = transposeDep(d)
		}
		out = append(out, d)
	}
	return out
}
