package core

import (
	"sort"

	"taco/internal/ref"
)

// This file implements an exact solver for the Compressed Edge Minimization
// (CEM) problem of Sec. IV-A. CEM is NP-hard (Theorem 1, by reduction from
// rectilinear picture compression), so the solver enumerates set partitions
// — a Bell-number search — and is only usable for tiny inputs. Its purpose
// is to ground-truth the greedy compressor in tests and in the cem bench.

// MaxExactCEM is the largest dependency count ExactCEM accepts; Bell(12) is
// already ~4.2M partitions.
const MaxExactCEM = 12

// ExactCEM returns the minimum number of compressed edges over every
// partition of deps where each class is either a single dependency or
// compressible by one of the enabled patterns, along with one optimal
// partition (as dependency indices per class). It returns -1 when len(deps)
// exceeds MaxExactCEM.
func ExactCEM(deps []Dependency, opts Options) (int, [][]int) {
	n := len(deps)
	if n == 0 {
		return 0, nil
	}
	if n > MaxExactCEM {
		return -1, nil
	}
	best := n + 1
	var bestPart [][]int
	part := make([][]int, 0, n)

	var rec func(i int)
	rec = func(i int) {
		if len(part) >= best {
			return // prune: already no better than the best found
		}
		if i == n {
			if len(part) < best {
				best = len(part)
				bestPart = clonePartition(part)
			}
			return
		}
		// Place dep i into an existing class...
		for k := range part {
			part[k] = append(part[k], i)
			if classCompressible(deps, part[k], opts) {
				rec(i + 1)
			}
			part[k] = part[k][:len(part[k])-1]
		}
		// ...or start a new class.
		part = append(part, []int{i})
		rec(i + 1)
		part = part[:len(part)-1]
	}
	rec(0)
	return best, bestPart
}

func clonePartition(part [][]int) [][]int {
	out := make([][]int, len(part))
	for i, c := range part {
		out[i] = append([]int(nil), c...)
	}
	return out
}

// classCompressible reports whether the dependencies at the given indices can
// be compressed into one edge by some enabled pattern (or form a singleton).
func classCompressible(deps []Dependency, idx []int, opts Options) bool {
	if len(idx) <= 1 {
		return true
	}
	for _, axis := range []ref.Axis{ref.AxisCol, ref.AxisRow} {
		for _, p := range opts.patterns() {
			if classFitsPattern(deps, idx, p, axis) {
				return true
			}
		}
	}
	return false
}

// classFitsPattern checks whether inserting the class's dependencies in run
// order builds a single edge under pattern p along axis.
func classFitsPattern(deps []Dependency, idx []int, p PatternType, axis ref.Axis) bool {
	ordered := append([]int(nil), idx...)
	sort.Slice(ordered, func(a, b int) bool {
		da, db := deps[ordered[a]].Dep, deps[ordered[b]].Dep
		if axis == ref.AxisCol {
			if da.Col != db.Col {
				return da.Col < db.Col
			}
			return da.Row < db.Row
		}
		if da.Row != db.Row {
			return da.Row < db.Row
		}
		return da.Col < db.Col
	})
	e := singleEdge(deps[ordered[0]])
	for _, i := range ordered[1:] {
		merged := AddDep(e, deps[i], p, axis)
		if merged == nil {
			return false
		}
		e = merged
	}
	return true
}

// GreedyCEM compresses deps with the greedy algorithm and returns the number
// of edges, for comparison against ExactCEM.
func GreedyCEM(deps []Dependency, opts Options) int {
	return Build(deps, opts).NumEdges()
}

// ---------------------------------------------------------------------------
// RR-GapOne prevalence analysis (Sec. V).
// ---------------------------------------------------------------------------

// GapOneReduction estimates how many edges the RR-GapOne extended pattern —
// RR applied to the formula cells of every other row — would additionally
// remove, mirroring the paper's prevalence measurement. It scans the
// dependencies grouped by column and counts, for each maximal stride-2 run of
// cells with identical relative offsets, run length minus one.
//
// The paper reports this number to justify *not* integrating RR-GapOne: it
// removes ~100x fewer edges than plain RR on real data.
func GapOneReduction(deps []Dependency) int {
	// Group single-reference offsets by (column, parity of row), and index
	// offsets per cell so runs already covered by plain adjacent RR (the
	// intermediate row continues the same pattern) are not double-counted.
	type key struct {
		col    int
		parity int
	}
	type rels struct{ h, t ref.Offset }
	offsets := map[ref.Ref][]rels{}
	for _, d := range deps {
		h, t := d.rel()
		offsets[d.Dep] = append(offsets[d.Dep], rels{h, t})
	}
	hasSameRel := func(c ref.Ref, want rels) bool {
		for _, r := range offsets[c] {
			if r == want {
				return true
			}
		}
		return false
	}
	byCol := map[key][]Dependency{}
	for _, d := range deps {
		k := key{col: d.Dep.Col, parity: d.Dep.Row % 2}
		byCol[k] = append(byCol[k], d)
	}
	reduced := 0
	for _, list := range byCol {
		sort.Slice(list, func(a, b int) bool { return list[a].Dep.Row < list[b].Dep.Row })
		runLen := 1
		for i := 1; i < len(list); i++ {
			prevH, prevT := list[i-1].rel()
			curH, curT := list[i].rel()
			cur := rels{curH, curT}
			mid := ref.Ref{Col: list[i].Dep.Col, Row: list[i].Dep.Row - 1}
			if list[i].Dep.Row == list[i-1].Dep.Row+2 &&
				prevH == curH && prevT == curT && !hasSameRel(mid, cur) {
				runLen++
				continue
			}
			if runLen > 1 {
				reduced += runLen - 1
			}
			runLen = 1
		}
		if runLen > 1 {
			reduced += runLen - 1
		}
	}
	return reduced
}
