//go:build !linux || !(amd64 || arm64)

package journal

import "os"

// syncFS is unavailable here; the Syncer falls back to per-file fsync.
func syncFS(*os.File) bool { return false }
