package journal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
	"time"
)

// Follower tails one journal file past a live writer. It is the local half
// of journal shipping: the primary's replication endpoint drives one to
// stream a session's records to a standby, and anything colocated with the
// spill directory can tail journals directly.
//
// Safety rests on the log's own invariants rather than coordination with
// the writer: reads are valid-prefix (a record is delivered only once its
// length, body, and CRC are all on disk — a mid-append tail just ends the
// poll), the cursor is the session rev (monotonic across the journal's
// whole life, surviving checkpoint Resets), and every delivered rev is
// > cursor, so re-reading a prefix never re-delivers. Resume after any
// confusion — a checkpoint truncation shrinking the file, a reset-and-regrow
// misaligning the byte offset — is "rescan from the header, skip by cursor";
// journals are checkpoint-bounded, so a rescan is cheap.
type Follower struct {
	path   string
	magic  []byte
	cursor uint64 // highest rev delivered (or the caller's starting point)
	off    int64  // byte offset just past the last decoded record
	body   []byte // record decode buffer, reused across polls
}

// NewFollower tails the log at path, delivering records with rev > from.
func NewFollower(path string, magic []byte, from uint64) *Follower {
	return &Follower{path: path, magic: magic, cursor: from}
}

// Cursor returns the highest rev delivered so far (the resume point).
func (fl *Follower) Cursor() uint64 { return fl.cursor }

// Poll reads every complete record currently on disk beyond the cursor,
// invoking fn per record (payload reused between calls, as Scan); it
// returns the number delivered. A missing file, a torn tail, or an empty
// poll are all nil-error outcomes — the journal may simply not have been
// written yet. Only fn's own error propagates (delivery position is kept,
// so a failed apply resumes at the same record next poll).
func (fl *Follower) Poll(fn func(rev uint64, payload []byte) error) (int, error) {
	f, err := os.Open(fl.path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if fi.Size() < fl.off {
		// The writer checkpointed: a snapshot superseded the log and Reset
		// truncated it. Revs keep rising across resets, so restart at the
		// header and let the cursor skip everything already delivered.
		fl.off = 0
	}
	n, err := fl.pollFrom(f, fn)
	if err != nil {
		return n, err
	}
	if n == 0 && fl.off > int64(len(fl.magic)) && fi.Size() > fl.off {
		// Bytes beyond our offset that don't decode: the log was reset and
		// regrown past our old position between polls, leaving the offset
		// misaligned mid-record. Rescan from the header; the cursor guard
		// makes the retry exactly-once.
		fl.off = 0
		return fl.pollFrom(f, fn)
	}
	return n, nil
}

// pollFrom decodes records from fl.off (0 = validate the header first),
// delivering those beyond the cursor and advancing offset and cursor per
// record, so an fn error or torn tail resumes precisely.
func (fl *Follower) pollFrom(f *os.File, fn func(rev uint64, payload []byte) error) (int, error) {
	if fl.off == 0 {
		var hdr [8]byte
		m := hdr[:len(fl.magic)]
		if _, err := f.ReadAt(m, 0); err != nil || !bytes.Equal(m, fl.magic) {
			return 0, nil // header not (yet) on disk
		}
		fl.off = int64(len(fl.magic))
	}
	if _, err := f.Seek(fl.off, io.SeekStart); err != nil {
		return 0, err
	}
	br := bufio.NewReaderSize(f, 64<<10)
	delivered := 0
	for {
		n, err := binary.ReadUvarint(br)
		if err != nil || n == 0 || n > MaxRecordBytes {
			return delivered, nil
		}
		if uint64(cap(fl.body)) < n {
			fl.body = make([]byte, n)
		}
		body := fl.body[:n]
		if _, err := io.ReadFull(br, body); err != nil {
			return delivered, nil
		}
		var cb [4]byte
		if _, err := io.ReadFull(br, cb[:]); err != nil {
			return delivered, nil
		}
		if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(cb[:]) {
			return delivered, nil
		}
		rev, rn := binary.Uvarint(body)
		if rn <= 0 {
			return delivered, nil
		}
		if rev > fl.cursor {
			if err := fn(rev, body[rn:]); err != nil {
				return delivered, err
			}
			fl.cursor = rev
			delivered++
		}
		fl.off += int64(uvarintLen(n)) + int64(n) + 4
	}
}

// Backoff is capped exponential retry pacing for shipping loops: Next
// doubles from Base to Cap, Reset re-arms after a success.
type Backoff struct {
	Base time.Duration
	Cap  time.Duration
	cur  time.Duration
}

// Next returns the delay before the next retry.
func (b *Backoff) Next() time.Duration {
	if b.cur <= 0 {
		b.cur = b.Base
	} else {
		b.cur *= 2
		if b.cur > b.Cap {
			b.cur = b.Cap
		}
	}
	return b.cur
}

// Reset re-arms the backoff after a successful attempt.
func (b *Backoff) Reset() { b.cur = 0 }
