package journal

import "taco/internal/telemetry"

// Package-global instruments on the telemetry default registry, following
// the repo-wide convention: any number of writers and registries compose
// into one process view, registered at init so the families appear in
// /metrics even before the first durable session.
var (
	mAppends = telemetry.NewCounter("taco_journal_appends_total",
		"Records appended across all journal and registry logs.")
	mAppendBytes = telemetry.NewCounter("taco_journal_append_bytes_total",
		"Encoded record bytes appended across all journal and registry logs.")
	mFsyncs = telemetry.NewCounter("taco_journal_fsyncs_total",
		"fsync(2) calls completed on journal and registry logs (group commits, interval flushes, closes).")
	mTruncations = telemetry.NewCounter("taco_journal_truncations_total",
		"Journal truncations: snapshot-superseded resets plus torn tails dropped at open.")
	mAppendErrors = telemetry.NewCounter("taco_journal_append_errors_total",
		"Failed journal appends (write error; the tail was wound back to the last record boundary).")
	mTornWriters = telemetry.NewCounter("taco_journal_torn_writers_total",
		"Writers poisoned because a failed append could not be wound back (ErrTorn until Reopen).")
	mWriterReopens = telemetry.NewCounter("taco_journal_reopens_total",
		"Writer reopens: post-fault revalidations that re-armed a journal for appends.")
	mRegistryRecords = telemetry.NewCounter("taco_registry_records_total",
		"Put/delete records appended to the session registry.")
	mRegistryCompactions = telemetry.NewCounter("taco_registry_compactions_total",
		"Session-registry log compactions (rewrite to the live set).")
)
