package journal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

type rec struct {
	rev     uint64
	payload string
}

func scanAll(t *testing.T, path string) (recs []rec, head uint64, valid int64) {
	t.Helper()
	head, valid, err := ScanFile(path, JournalMagic, func(rev uint64, payload []byte) error {
		recs = append(recs, rec{rev, string(payload)})
		return nil
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	return recs, head, valid
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.tacoj")
	w, err := Open(path, JournalMagic, SyncNever, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []rec{{1, "alpha"}, {2, ""}, {7, "gamma-gamma"}}
	for _, r := range want {
		if err := w.Append(r.rev, []byte(r.payload)); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Head(); got != 7 {
		t.Fatalf("head = %d, want 7", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, head, _ := scanAll(t, path)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scan = %v, want %v", got, want)
	}
	if head != 7 {
		t.Fatalf("scan head = %d, want 7", head)
	}

	// Reopen resumes at the recovered head.
	w, err = Open(path, JournalMagic, SyncNever, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if got := w.Head(); got != 7 {
		t.Fatalf("reopened head = %d, want 7", got)
	}
	if err := w.Append(8, []byte("delta")); err != nil {
		t.Fatal(err)
	}
	got, _, _ = scanAll(t, path)
	if len(got) != 4 || got[3] != (rec{8, "delta"}) {
		t.Fatalf("after reopen+append: %v", got)
	}
}

func TestJournalTornTailTruncatedAtOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.tacoj")
	w, err := Open(path, JournalMagic, SyncNever, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		if err := w.Append(i, []byte("payload-payload")); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	// Tear the tail mid-record, as a crash mid-append would.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	recs, head, valid := scanAll(t, path)
	if len(recs) != 2 || head != 2 {
		t.Fatalf("after tear: recs=%v head=%d", recs, head)
	}
	// Open truncates the torn bytes and appends cleanly after them.
	w, err = Open(path, JournalMagic, SyncNever, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != valid {
		t.Fatalf("open left size=%v err=%v, want %d", fi.Size(), err, valid)
	}
	if err := w.Append(3, []byte("replacement")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	recs, head, _ = scanAll(t, path)
	if len(recs) != 3 || head != 3 || recs[2].payload != "replacement" {
		t.Fatalf("after repair: recs=%v head=%d", recs, head)
	}
}

func TestJournalBitFlipStopsAtLastValid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.tacoj")
	w, err := Open(path, JournalMagic, SyncNever, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, []byte("first-record")); err != nil {
		t.Fatal(err)
	}
	mid, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(2, []byte("second-record")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[mid.Size()+3] ^= 0x40 // corrupt the second record's body
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, head, _ := scanAll(t, path)
	if len(recs) != 1 || head != 1 {
		t.Fatalf("after flip: recs=%v head=%d", recs, head)
	}
}

func TestJournalReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.tacoj")
	w, err := Open(path, JournalMagic, SyncNever, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := uint64(1); i <= 4; i++ {
		if err := w.Append(i, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := w.Head(); got != 0 {
		t.Fatalf("head after reset = %d", got)
	}
	if err := w.Append(5, []byte("post-reset")); err != nil {
		t.Fatal(err)
	}
	recs, head, _ := scanAll(t, path)
	if len(recs) != 1 || head != 5 || recs[0].payload != "post-reset" {
		t.Fatalf("after reset: recs=%v head=%d", recs, head)
	}
}

func TestJournalGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.tacoj")
	w, err := Open(path, JournalMagic, SyncAlways, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const n = 32
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			if err := w.Append(uint64(i+1), []byte(fmt.Sprintf("r%d", i))); err != nil {
				t.Error(err)
				return
			}
			if err := w.Sync(); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	recs, _, _ := scanAll(t, path)
	if len(recs) != n {
		t.Fatalf("got %d records, want %d", len(recs), n)
	}
}

func TestRegistryRoundTripAndCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.tacor")
	r, err := OpenRegistry(path, SyncNever, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Put(Entry{ID: "aaa", Name: "first", SnapRev: 3, SnapHeld: true}); err != nil {
		t.Fatal(err)
	}
	if err := r.Put(Entry{ID: "bbb", Name: "second"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Put(Entry{ID: "ccc", SnapRev: 9, SnapHeld: true}); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("bbb"); err != nil {
		t.Fatal(err)
	}
	// Churn one entry enough to cross the compaction threshold.
	for i := 0; i < 1500; i++ {
		if err := r.Put(Entry{ID: "aaa", Name: "first", SnapRev: uint64(i), SnapHeld: true}); err != nil {
			t.Fatal(err)
		}
	}
	if r.appends >= 1024 {
		t.Fatalf("expected a compaction to have reset the log: appends=%d live=%d", r.appends, r.Len())
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := OpenRegistry(path, SyncNever, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	got := map[string]Entry{}
	for _, e := range r2.Entries() {
		got[e.ID] = e
	}
	want := map[string]Entry{
		"aaa": {ID: "aaa", Name: "first", SnapRev: 1499, SnapHeld: true},
		"ccc": {ID: "ccc", SnapRev: 9, SnapHeld: true},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reloaded registry = %v, want %v", got, want)
	}
}

// TestRegistryChainExtensionCompat pins the delta-chain extension's
// compatibility contract from both directions: a chain-free entry encodes
// byte-identically to the pre-extension format (so registries written by
// this build open under old decoders), and a registry written before the
// extension existed — simulated by those identical bytes — opens warm here,
// decoding to entries with empty chain state. Chained entries round-trip
// through close/reopen.
func TestRegistryChainExtensionCompat(t *testing.T) {
	// Byte-identity with the pre-extension layout: ID, Name, uvarint
	// SnapRev, held byte — and nothing after.
	plain := Entry{ID: "aaa", Name: "old", SnapRev: 300, SnapHeld: true}
	var want []byte
	want = appendString(want, plain.ID)
	want = appendString(want, plain.Name)
	var vb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(vb[:], plain.SnapRev)
	want = append(want, vb[:n]...)
	want = append(want, 1)
	if got := appendEntry(nil, plain); !bytes.Equal(got, want) {
		t.Fatalf("chain-free entry encoding diverged from the pre-extension format:\ngot  %x\nwant %x", got, want)
	}

	// An "old" registry — only chain-free entries — opens warm with empty
	// chain state.
	path := filepath.Join(t.TempDir(), "sessions.tacor")
	r, err := OpenRegistry(path, SyncNever, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Put(plain); err != nil {
		t.Fatal(err)
	}
	chained := Entry{
		ID: "bbb", Name: "forked", SnapRev: 7, SnapHeld: true,
		BaseID: "aaa", BaseRev: 3,
		Chain: []ChainLink{{ID: "aaa", Rev: 5}, {ID: "bbb", Rev: 7}},
	}
	if err := r.Put(chained); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := OpenRegistry(path, SyncNever, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	got := map[string]Entry{}
	for _, e := range r2.Entries() {
		got[e.ID] = e
	}
	if !reflect.DeepEqual(got["aaa"], plain) {
		t.Fatalf("pre-extension entry = %+v, want %+v", got["aaa"], plain)
	}
	if !reflect.DeepEqual(got["bbb"], chained) {
		t.Fatalf("chained entry = %+v, want %+v", got["bbb"], chained)
	}
}

func TestRegistryTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.tacor")
	r, err := OpenRegistry(path, SyncNever, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Put(Entry{ID: "keep", SnapRev: 1, SnapHeld: true})
	r.Put(Entry{ID: "torn", SnapRev: 2, SnapHeld: true})
	r.Close()
	fi, _ := os.Stat(path)
	os.Truncate(path, fi.Size()-3)
	r2, err := OpenRegistry(path, SyncNever, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Len() != 1 || r2.Entries()[0].ID != "keep" {
		t.Fatalf("after tear: %v", r2.Entries())
	}
}

// FuzzJournalDecode asserts the scanner's contract on arbitrary bytes: it
// never panics, stops at the last valid record, and reports a valid prefix
// that rescans to the identical record sequence.
func FuzzJournalDecode(f *testing.F) {
	var seed []byte
	seed = append(seed, JournalMagic...)
	seed = appendRecord(seed, 1, []byte("hello"))
	seed = appendRecord(seed, 2, []byte(""))
	seed = appendRecord(seed, 3, bytes.Repeat([]byte{0xAB}, 300))
	f.Add(seed)
	f.Add(seed[:len(seed)-2])      // torn tail
	f.Add([]byte("TACOJ1"))        // empty log
	f.Add([]byte("TACOX9garbage")) // wrong magic
	f.Add(bytes.Repeat(seed, 3))   // magic bytes inside record data
	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []rec
		head, valid, err := Scan(bytes.NewReader(data), JournalMagic, func(rev uint64, payload []byte) error {
			recs = append(recs, rec{rev, string(payload)})
			return nil
		})
		if err != nil {
			t.Fatalf("scan returned error on arbitrary input: %v", err)
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d out of range [0,%d]", valid, len(data))
		}
		if len(recs) > 0 && recs[len(recs)-1].rev != head {
			t.Fatalf("head %d != last record rev %d", head, recs[len(recs)-1].rev)
		}
		// The reported prefix must rescan to the same records: that is what
		// Open keeps after truncating a torn tail.
		var recs2 []rec
		head2, valid2, _ := Scan(bytes.NewReader(data[:valid]), JournalMagic, func(rev uint64, payload []byte) error {
			recs2 = append(recs2, rec{rev, string(payload)})
			return nil
		})
		if head2 != head || valid2 != valid || !reflect.DeepEqual(recs, recs2) {
			t.Fatalf("rescan of valid prefix diverged: (%d,%d,%v) vs (%d,%d,%v)",
				head, valid, recs, head2, valid2, recs2)
		}
	})
}
