package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"taco/internal/faultfs"
)

// collect drains a poll into (rev, payload-string) pairs.
func collect(t *testing.T, fl *Follower) []string {
	t.Helper()
	var got []string
	n, err := fl.Poll(func(rev uint64, payload []byte) error {
		got = append(got, fmt.Sprintf("%d:%s", rev, payload))
		return nil
	})
	if err != nil {
		t.Fatalf("Poll: %v", err)
	}
	if n != len(got) {
		t.Fatalf("Poll reported %d, delivered %d", n, len(got))
	}
	return got
}

func TestFollowerTailsLiveWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.tacoj")
	w, err := Open(path, JournalMagic, SyncNever, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	fl := NewFollower(path, JournalMagic, 0)
	if got := collect(t, fl); len(got) != 0 {
		t.Fatalf("empty journal delivered %v", got)
	}

	for rev := uint64(1); rev <= 3; rev++ {
		if err := w.Append(rev, []byte(fmt.Sprintf("e%d", rev))); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, fl)
	want := []string{"1:e1", "2:e2", "3:e3"}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("first poll = %v, want %v", got, want)
		}
	}
	// Nothing new: empty poll, cursor holds.
	if got := collect(t, fl); len(got) != 0 {
		t.Fatalf("idle poll delivered %v", got)
	}
	// New appends resume mid-file.
	if err := w.Append(4, []byte("e4")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, fl); len(got) != 1 || got[0] != "4:e4" {
		t.Fatalf("resume poll = %v", got)
	}
	if fl.Cursor() != 4 {
		t.Fatalf("cursor = %d", fl.Cursor())
	}
}

func TestFollowerMissingFileAndTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.tacoj")
	fl := NewFollower(path, JournalMagic, 0)
	if got := collect(t, fl); len(got) != 0 {
		t.Fatalf("missing file delivered %v", got)
	}

	w, err := Open(path, JournalMagic, SyncNever, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, []byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a writer mid-append: a torn half-record at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	full := appendRecord(nil, 2, []byte("torn-record"))
	if _, err := f.Write(full[:len(full)-5]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if got := collect(t, fl); len(got) != 1 || got[0] != "1:good" {
		t.Fatalf("torn-tail poll = %v", got)
	}
	// Writer restarts (truncating the tear) and finishes the record.
	w, err = Open(path, JournalMagic, SyncNever, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(2, []byte("whole")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, fl); len(got) != 1 || got[0] != "2:whole" {
		t.Fatalf("post-tear poll = %v", got)
	}
}

func TestFollowerSurvivesCheckpointReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.tacoj")
	w, err := Open(path, JournalMagic, SyncNever, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	fl := NewFollower(path, JournalMagic, 0)
	if err := w.Append(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(2, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, fl); len(got) != 2 {
		t.Fatalf("pre-reset poll = %v", got)
	}

	// Checkpoint: snapshot superseded the log, file shrinks to the header.
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, fl); len(got) != 0 {
		t.Fatalf("post-reset poll delivered %v", got)
	}
	if err := w.Append(3, []byte("c")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, fl); len(got) != 1 || got[0] != "3:c" {
		t.Fatalf("post-reset append poll = %v", got)
	}
}

func TestFollowerResetAndRegrowPastOffset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.tacoj")
	w, err := Open(path, JournalMagic, SyncNever, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	fl := NewFollower(path, JournalMagic, 0)
	if err := w.Append(1, []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, fl); len(got) != 1 {
		t.Fatalf("first poll = %v", got)
	}

	// Between polls: reset, then regrow LARGER than the follower's offset
	// with a record boundary that does not line up with it.
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 256)
	for i := range big {
		big[i] = byte(i)
	}
	if err := w.Append(2, big); err != nil {
		t.Fatal(err)
	}
	got := collect(t, fl)
	if len(got) != 1 || got[0] != fmt.Sprintf("2:%s", big) {
		t.Fatalf("misaligned-regrow poll delivered %d records", len(got))
	}
}

func TestFollowerFromCursorSkipsPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.tacoj")
	w, err := Open(path, JournalMagic, SyncNever, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for rev := uint64(1); rev <= 5; rev++ {
		if err := w.Append(rev, []byte{byte(rev)}); err != nil {
			t.Fatal(err)
		}
	}
	fl := NewFollower(path, JournalMagic, 3)
	got := collect(t, fl)
	if len(got) != 2 || got[0] != "4:\x04" || got[1] != "5:\x05" || fl.Cursor() != 5 {
		t.Fatalf("from=3 poll = %q, cursor %d", got, fl.Cursor())
	}
}

func TestFollowerFnErrorResumesSameRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.tacoj")
	w, err := Open(path, JournalMagic, SyncNever, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for rev := uint64(1); rev <= 3; rev++ {
		if err := w.Append(rev, []byte{'p', byte('0' + rev)}); err != nil {
			t.Fatal(err)
		}
	}
	fl := NewFollower(path, JournalMagic, 0)
	boom := errors.New("apply failed")
	n, err := fl.Poll(func(rev uint64, payload []byte) error {
		if rev == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || n != 1 {
		t.Fatalf("first poll = (%d, %v)", n, err)
	}
	// Retry resumes at rev 2, not after it.
	var revs []uint64
	if _, err := fl.Poll(func(rev uint64, payload []byte) error {
		revs = append(revs, rev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(revs) != 2 || revs[0] != 2 || revs[1] != 3 {
		t.Fatalf("retry delivered %v, want [2 3]", revs)
	}
}

func TestWriterTornPoisonAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.tacoj")
	w, err := Open(path, JournalMagic, SyncAlways, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(1, []byte("committed")); err != nil {
		t.Fatal(err)
	}

	// A short write tears the record AND the wind-back truncate fails: the
	// writer must poison itself rather than append past the tear.
	restore := faultfs.Inject(
		faultfs.Rule{Op: faultfs.OpWrite, Count: 1, Fault: faultfs.Fault{Err: syscall.ENOSPC, ShortBytes: 4}},
		faultfs.Rule{Op: faultfs.OpTruncate, Count: 1, Fault: faultfs.Fault{Err: syscall.EIO}},
	)
	defer restore()

	err = w.Append(2, []byte("doomed"))
	if !errors.Is(err, ErrTorn) {
		t.Fatalf("append over failed wind-back: want ErrTorn, got %v", err)
	}
	if err := w.Append(3, []byte("after")); !errors.Is(err, ErrTorn) {
		t.Fatalf("poisoned append: want ErrTorn, got %v", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrTorn) {
		t.Fatalf("poisoned sync: want ErrTorn, got %v", err)
	}
	faultfs.Clear()

	// Repair: reopen revalidates, drops the torn bytes, re-arms.
	head, err := w.Reopen()
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	if head != 1 {
		t.Fatalf("reopened head = %d, want 1", head)
	}
	if err := w.Append(2, []byte("retried")); err != nil {
		t.Fatalf("post-reopen append: %v", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("post-reopen sync: %v", err)
	}

	// The journal must be scan-valid end to end: committed, then retried.
	var got []string
	head, _, err = ScanFile(path, JournalMagic, func(rev uint64, payload []byte) error {
		got = append(got, fmt.Sprintf("%d:%s", rev, payload))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if head != 2 || len(got) != 2 || got[0] != "1:committed" || got[1] != "2:retried" {
		t.Fatalf("post-repair scan = %v (head %d)", got, head)
	}
}

func TestWriterShortWriteStaysScanValid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.tacoj")
	w, err := Open(path, JournalMagic, SyncNever, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(1, []byte("good")); err != nil {
		t.Fatal(err)
	}

	// ENOSPC mid-record, but truncate-back succeeds: the append fails,
	// the writer stays usable, and the file holds exactly the valid prefix.
	defer faultfs.Inject(faultfs.Rule{
		Op: faultfs.OpWrite, Count: 1,
		Fault: faultfs.Fault{Err: syscall.ENOSPC, ShortBytes: 2},
	})()

	if err := w.Append(2, []byte("fails")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	if err := w.Append(2, []byte("retried")); err != nil {
		t.Fatalf("writer should not be poisoned after clean wind-back: %v", err)
	}
	var got []string
	head, _, err := ScanFile(path, JournalMagic, func(rev uint64, payload []byte) error {
		got = append(got, fmt.Sprintf("%d:%s", rev, payload))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if head != 2 || len(got) != 2 || got[1] != "2:retried" {
		t.Fatalf("scan after short write = %v (head %d)", got, head)
	}
}

func TestRegistryCompactionTornRenameKeepsOldLog(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sessions.tacor")
	r, err := OpenRegistry(path, SyncNever, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Arm a rename fault, then churn one entry until amplification triggers
	// a compaction — whose swap never lands.
	defer faultfs.Inject(faultfs.Rule{
		Op: faultfs.OpRename, PathContains: "sessions.tacor", Count: 1,
		Fault: faultfs.Fault{Err: syscall.EIO},
	})()
	var compErr error
	for i := 0; i < 1100 && compErr == nil; i++ {
		compErr = r.Put(Entry{ID: "churn", Name: "n", SnapRev: uint64(i)})
	}
	if compErr == nil {
		t.Fatal("compaction under torn rename should surface the error")
	}
	faultfs.Clear()

	if err := r.Put(Entry{ID: "live", Name: "keep", SnapRev: 7}); err != nil {
		t.Fatalf("registry unusable after failed compaction: %v", err)
	}

	// The registry must remain writable and the live set intact.
	if err := r.Put(Entry{ID: "live2", Name: "keep2", SnapRev: 8}); err != nil {
		t.Fatalf("registry unusable after failed compaction: %v", err)
	}
	found := map[string]Entry{}
	for _, e := range r.Entries() {
		found[e.ID] = e
	}
	if found["live"].SnapRev != 7 || found["live2"].SnapRev != 8 || found["churn"].Name != "n" {
		t.Fatalf("live set after failed compaction = %+v", found)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind after failed compaction")
	}

	// Reload from disk: the surviving log must replay to the same set.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := OpenRegistry(path, SyncNever, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	found = map[string]Entry{}
	for _, e := range r2.Entries() {
		found[e.ID] = e
	}
	if found["live"].SnapRev != 7 || found["live2"].SnapRev != 8 {
		t.Fatalf("reloaded live set = %+v", found)
	}
}

func TestBackoff(t *testing.T) {
	b := &Backoff{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 80, 80}
	for i, w := range want {
		if got := b.Next(); got != w*time.Millisecond {
			t.Fatalf("Next #%d = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	b.Reset()
	if got := b.Next(); got != 10*time.Millisecond {
		t.Fatalf("post-reset Next = %v", got)
	}
}
