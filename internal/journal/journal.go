// Package journal implements the serving layer's crash-safety primitives:
// an append-only record log with per-record CRC32C trailers (the per-session
// edit journal) and, on the same format, a log-structured session registry
// (registry.go). Together they make a hosted session `snapshot + journal
// replay`: every accepted edit batch is appended here before the response
// commits, so a crashed server replays the tail of each journal on top of
// the session's last snapshot and loses nothing.
//
// Log format:
//
//	magic (6 bytes) | record | record | ...
//	record = uvarint(len(body)) | body | crc32c(body) little-endian
//	body   = uvarint(rev) | payload
//
// rev is the session revision the record produced (registry logs reuse the
// field as an opcode). Decoding is valid-prefix: a scan stops at the first
// record whose length, checksum, or header fails — a torn tail from a crash
// mid-append is silently dropped, never an error — and Open truncates the
// file back to that valid prefix before appending. Records are written with
// a single write(2), so anything short of a power failure (SIGKILL included)
// leaves at worst one torn record at the tail.
//
// Durability is policy-driven. write(2) already survives process death; the
// fsync policy buys power-loss durability at three price points: SyncAlways
// fsyncs before each Sync() returns (group commit: concurrent committers
// share one fsync), SyncInterval (the default) lets a background Syncer
// fsync dirty logs on a short ticker, and SyncNever leaves write-back
// entirely to the kernel.
package journal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"taco/internal/faultfs"
)

// Magic values identifying the three log kinds. Same length by design: the
// scanner slices its header buffer by the magic it is given.
var (
	JournalMagic  = []byte("TACOJ1")
	RegistryMagic = []byte("TACOR1")
	// DeltaMagic heads delta snapshot files (<id>.<rev>.tacod): the journal
	// record framing carrying the edit-codec payloads that advance a base
	// snapshot to a later revision.
	DeltaMagic = []byte("TACOD1")
)

// MaxRecordBytes bounds one record's body — comfortably above the server's
// largest accepted edit batch, and small enough that a corrupt length prefix
// can never provoke a huge allocation.
const MaxRecordBytes = 64 << 20

// crcTable is CRC32-Castagnoli, hardware-accelerated on amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed Writer.
var ErrClosed = errors.New("journal: writer closed")

// ErrTorn is returned by Append and Sync once a failed append could not be
// wound back to the last record boundary: the file may end mid-record, so
// further appends would be invisible to every valid-prefix scan (recovery,
// followers) while looking accepted to callers. The writer poisons itself
// instead; Reopen re-validates the file and re-arms it.
var ErrTorn = errors.New("journal: writer torn, reopen required")

// Policy selects when appended records are fsynced.
type Policy int8

const (
	// SyncInterval (the default) marks the log dirty on append and lets the
	// store's Syncer fsync it on a short ticker: a crash loses nothing, a
	// power failure loses at most one interval of acknowledged edits.
	SyncInterval Policy = iota
	// SyncAlways fsyncs before every Sync() returns, with group commit:
	// committers that race share one fsync instead of queueing their own.
	SyncAlways
	// SyncNever performs no fsyncs at all; the kernel writes back when it
	// pleases. Process crashes still lose nothing (records reach the page
	// cache synchronously); only power loss can.
	SyncNever
)

// ParsePolicy maps the flag spelling to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "interval", "":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("journal: unknown fsync policy %q (want always, interval, or never)", s)
}

func (p Policy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return "interval"
	}
}

// Writer appends records to one log file. Appends serialise on an internal
// mutex and issue exactly one write(2) each; Sync applies the policy's
// durability barrier. Safe for concurrent use.
type Writer struct {
	mu      sync.Mutex
	f       *faultfs.File
	path    string
	magic   []byte
	pol     Policy
	sy      *Syncer
	head    uint64 // rev of the last valid record
	size    int64  // length of the valid prefix (== file size between appends)
	scratch []byte // record encode buffer, reused under mu
	torn    bool   // truncate-back failed: file may end mid-record, see ErrTorn

	// Group-commit state (SyncAlways): seq counts appends, synced the highest
	// seq a completed fsync covered. A committer whose appends are already
	// covered returns without touching the disk; otherwise one committer
	// fsyncs while the rest wait on cond, and the fsync covers every append
	// that happened before it started.
	seq     uint64
	synced  uint64
	syncing bool
	cond    *sync.Cond
}

// Open opens (creating if needed) the log at path, validates its prefix, and
// positions the writer after the last valid record. A torn or corrupt tail —
// the expected state after a crash mid-append — is truncated away; a file
// whose header is unrecognisable is reinitialised empty. sy may be nil (no
// background syncing; relevant only under SyncInterval).
func Open(path string, magic []byte, pol Policy, sy *Syncer) (*Writer, error) {
	head, valid, err := ScanFile(path, magic, nil)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	f, err := faultfs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if valid == 0 {
		// Fresh file, or one whose magic never made it to disk: write a
		// clean header.
		if err := f.Truncate(0); err == nil {
			_, err = f.WriteAt(magic, 0)
		}
		if err != nil {
			f.Close()
			return nil, err
		}
		valid = int64(len(magic))
	} else if fi, err := f.Stat(); err == nil && fi.Size() > valid {
		// Torn tail from a crash mid-append: wind back to the valid prefix.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, err
		}
		mTruncations.Inc()
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	w := &Writer{f: f, path: path, magic: magic, pol: pol, sy: sy, head: head, size: valid}
	w.cond = sync.NewCond(&w.mu)
	return w, nil
}

// Head returns the rev of the last appended (or recovered) record; 0 when
// the log is empty.
func (w *Writer) Head() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.head
}

// Size returns the byte length of the log's valid prefix (header included).
// Callers use it to amortise truncation: reset only once enough log has
// accumulated, instead of on every superseding snapshot.
func (w *Writer) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Append encodes and appends one record in a single write(2). The record is
// process-crash durable when Append returns; call Sync for the policy's
// power-loss barrier. On a write error the file is wound back to the prior
// valid prefix so a partial record never lingers at the tail (an ENOSPC
// mid-record leaves the journal scan-valid for recovery and followers); if
// even the wind-back fails the writer poisons itself with ErrTorn rather
// than let later appends land beyond an undecodable gap, and Reopen is the
// repairer's path back.
func (w *Writer) Append(rev uint64, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return ErrClosed
	}
	if w.torn {
		return ErrTorn
	}
	w.scratch = appendRecord(w.scratch[:0], rev, payload)
	if _, err := w.f.Write(w.scratch); err != nil {
		mAppendErrors.Inc()
		// A short write may have torn the tail; restore the invariant that
		// the file holds exactly the valid prefix. If the truncate or seek
		// itself fails the invariant is gone: poison the writer so nothing
		// appends past the tear.
		if terr := w.f.Truncate(w.size); terr != nil {
			w.torn = true
			mTornWriters.Inc()
			return fmt.Errorf("%w: %w (append: %w)", ErrTorn, terr, err)
		}
		if _, serr := w.f.Seek(w.size, io.SeekStart); serr != nil {
			w.torn = true
			mTornWriters.Inc()
			return fmt.Errorf("%w: %w (append: %w)", ErrTorn, serr, err)
		}
		return err
	}
	w.size += int64(len(w.scratch))
	w.head = rev
	w.seq++
	mAppends.Inc()
	mAppendBytes.Add(uint64(len(w.scratch)))
	if w.pol == SyncInterval && w.sy != nil {
		w.sy.note(w)
	}
	return nil
}

// Sync is the durability barrier: under SyncAlways it returns only after an
// fsync covering every prior Append has completed (group commit — racing
// committers share one fsync); under SyncInterval and SyncNever it is a
// no-op, those policies never block the commit path on the disk.
func (w *Writer) Sync() error {
	if w.pol != SyncAlways {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	target := w.seq
	for w.synced < target && w.syncing {
		w.cond.Wait()
	}
	if w.synced >= target {
		return nil // a racing committer's fsync covered us
	}
	if w.f == nil {
		return ErrClosed
	}
	if w.torn {
		return ErrTorn
	}
	cover := w.seq
	w.syncing = true
	f := w.f
	w.mu.Unlock()
	err := f.Sync()
	w.mu.Lock()
	w.syncing = false
	if err == nil {
		mFsyncs.Inc()
		if cover > w.synced {
			w.synced = cover
		}
	}
	w.cond.Broadcast()
	return err
}

// backgroundSync is the Syncer's flush of one dirty log. The fsync runs
// outside the writer mutex so it never stalls the append path.
func (w *Writer) backgroundSync() {
	w.mu.Lock()
	f := w.f
	w.mu.Unlock()
	if f == nil {
		return
	}
	if f.Sync() == nil {
		mFsyncs.Inc()
	}
}

// Reset truncates the log back to its header: the snapshot the caller just
// wrote has superseded every record. The head rev resets to 0.
func (w *Writer) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return ErrClosed
	}
	if err := w.f.Truncate(int64(len(w.magic))); err != nil {
		return err
	}
	if _, err := w.f.Seek(int64(len(w.magic)), io.SeekStart); err != nil {
		return err
	}
	w.size = int64(len(w.magic))
	w.head = 0
	mTruncations.Inc()
	return nil
}

// Reopen re-validates the log after a failure and re-arms the writer: it
// rescans the file, truncates any torn or unwound tail back to the valid
// prefix, repositions, and clears the torn poison. This is the background
// repairer's recovery step once the underlying fault (full volume, flaky
// device) has cleared. Appends that failed are gone — the caller re-appends
// from its own buffer. Returns the head rev of the surviving prefix.
func (w *Writer) Reopen() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, ErrClosed
	}
	head, valid, err := ScanFile(w.path, w.magic, nil)
	if err != nil {
		return 0, err
	}
	if valid == 0 {
		// Header never survived: reinitialise empty.
		if err := w.f.Truncate(0); err != nil {
			return 0, err
		}
		if _, err := w.f.WriteAt(w.magic, 0); err != nil {
			return 0, err
		}
		valid = int64(len(w.magic))
	} else if fi, serr := w.f.Stat(); serr == nil && fi.Size() > valid {
		if err := w.f.Truncate(valid); err != nil {
			return 0, err
		}
		mTruncations.Inc()
	}
	if _, err := w.f.Seek(valid, io.SeekStart); err != nil {
		return 0, err
	}
	w.head = head
	w.size = valid
	w.torn = false
	mWriterReopens.Inc()
	return head, nil
}

// Close flushes (per policy) and closes the log. Further operations return
// ErrClosed. Idempotent.
func (w *Writer) Close() error {
	w.mu.Lock()
	f := w.f
	w.f = nil
	w.mu.Unlock()
	if f == nil {
		return nil
	}
	if w.sy != nil {
		w.sy.forget(w)
	}
	var err error
	if w.pol != SyncNever {
		if err = f.Sync(); err == nil {
			mFsyncs.Inc()
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// appendRecord encodes `uvarint(len) | body | crc32c(body)` with
// body = `uvarint(rev) | payload` onto dst.
func appendRecord(dst []byte, rev uint64, payload []byte) []byte {
	var rb [binary.MaxVarintLen64]byte
	rn := binary.PutUvarint(rb[:], rev)
	var lb [binary.MaxVarintLen64]byte
	ln := binary.PutUvarint(lb[:], uint64(rn+len(payload)))
	dst = append(dst, lb[:ln]...)
	body := len(dst)
	dst = append(dst, rb[:rn]...)
	dst = append(dst, payload...)
	var cb [4]byte
	binary.LittleEndian.PutUint32(cb[:], crc32.Checksum(dst[body:], crcTable))
	return append(dst, cb[:]...)
}

// Scan decodes the valid prefix of a log, invoking fn (when non-nil) per
// record with the rev and payload; the payload slice is reused between
// records. It returns the rev of the last valid record and the byte length
// of the valid prefix. A torn, truncated, or bit-flipped tail stops the scan
// cleanly — never a panic, never an error — because that is the normal
// post-crash state; only fn's own error propagates. An unreadable or absent
// magic yields (0, 0, nil): nothing valid, caller reinitialises.
func Scan(r io.Reader, magic []byte, fn func(rev uint64, payload []byte) error) (head uint64, valid int64, err error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 64<<10)
	}
	var hdr [8]byte
	m := hdr[:len(magic)]
	if _, err := io.ReadFull(br, m); err != nil || !bytes.Equal(m, magic) {
		return 0, 0, nil
	}
	valid = int64(len(magic))
	var body []byte
	for {
		n, err := binary.ReadUvarint(br)
		if err != nil || n == 0 || n > MaxRecordBytes {
			return head, valid, nil
		}
		if uint64(cap(body)) < n {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(br, body); err != nil {
			return head, valid, nil
		}
		var cb [4]byte
		if _, err := io.ReadFull(br, cb[:]); err != nil {
			return head, valid, nil
		}
		if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(cb[:]) {
			return head, valid, nil
		}
		rev, rn := binary.Uvarint(body)
		if rn <= 0 {
			return head, valid, nil
		}
		if fn != nil {
			if err := fn(rev, body[rn:]); err != nil {
				return head, valid, err
			}
		}
		head = rev
		valid += int64(uvarintLen(n)) + int64(n) + 4
	}
}

// ScanFile is Scan over the file at path. A missing file surfaces as
// os.ErrNotExist so callers can treat it as an empty log.
func ScanFile(path string, magic []byte, fn func(rev uint64, payload []byte) error) (head uint64, valid int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	return Scan(f, magic, fn)
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Syncer is the background fsync ticker shared by every log of a store under
// SyncInterval: appends mark their writer dirty, and each tick flushes the
// dirty set. One goroutine per store, however many sessions are journaling.
type Syncer struct {
	mu    sync.Mutex
	dirty map[*Writer]struct{}
	quit  chan struct{}
	done  chan struct{}
}

// NewSyncer starts a syncer flushing dirty logs every interval.
func NewSyncer(interval time.Duration) *Syncer {
	sy := &Syncer{
		dirty: make(map[*Writer]struct{}),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go func() {
		defer close(sy.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				sy.flush()
			case <-sy.quit:
				sy.flush() // final pass so Close leaves nothing unsynced
				return
			}
		}
	}()
	return sy
}

func (sy *Syncer) flush() {
	sy.mu.Lock()
	batch := make([]*Writer, 0, len(sy.dirty))
	for w := range sy.dirty {
		batch = append(batch, w)
	}
	clear(sy.dirty)
	sy.mu.Unlock()
	if len(batch) > 1 {
		// Every log a store syncs lives in one spill directory: one
		// syncfs(2) is a single disk barrier covering the whole dirty set,
		// instead of a per-file fsync parade stalling concurrent appends on
		// inode locks.
		for _, w := range batch {
			w.mu.Lock()
			f := w.f
			w.mu.Unlock()
			// The syncfs(2) fast path bypasses the File wrapper, so consult
			// the fault plan directly; an injected fsync fault drops to the
			// per-file loop where it is observable per log.
			if f != nil && faultfs.Check(faultfs.OpSync, w.path) == nil && syncFS(f.File) {
				mFsyncs.Inc()
				return
			}
		}
	}
	for _, w := range batch {
		w.backgroundSync()
	}
}

func (sy *Syncer) note(w *Writer) {
	sy.mu.Lock()
	sy.dirty[w] = struct{}{}
	sy.mu.Unlock()
}

func (sy *Syncer) forget(w *Writer) {
	sy.mu.Lock()
	delete(sy.dirty, w)
	sy.mu.Unlock()
}

// Close stops the ticker after one final flush of the dirty set.
func (sy *Syncer) Close() {
	close(sy.quit)
	<-sy.done
}
