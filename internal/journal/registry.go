package journal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"taco/internal/faultfs"
)

// The registry is the store's session manifest: an append-only log (same
// record format as the journals, magic TACOR1) whose records are put/delete
// operations on {session ID → snapshot rev, journal presence}. Replaying it
// at boot tells a restarted server every session that existed, which
// snapshot revision its spill file holds, and therefore which journal tail
// to replay on top. It compacts in place — rewrite live entries to a temp
// file, fsync, rename — once the log grows well past its live set, so
// eviction-heavy workloads don't grow it without bound.

// Registry record opcodes, carried in the record's rev field.
const (
	regOpPut    = 1
	regOpDelete = 2
)

// maxRegistryString bounds ID and name fields on decode.
const maxRegistryString = 4096

// maxRegistryChain bounds the delta-chain length on decode; compaction
// policies keep real chains far shorter.
const maxRegistryChain = 4096

// ChainLink is one delta record file in a session's snapshot chain: the
// file <ID>.<Rev>.tacod holds the value-only edits that carry the state
// from the previous link (or the base) up to Rev.
type ChainLink struct {
	// ID is the session that wrote the delta file (a fork's early links
	// belong to its parent).
	ID string
	// Rev is the revision the chain reaches after replaying this link.
	Rev uint64
}

// Entry is one registered session.
type Entry struct {
	// ID is the session identifier; the spill file is <ID>.tacos and the
	// journal <ID>.tacoj in the store's spill directory.
	ID string
	// Name is the client-supplied session label, preserved across restarts.
	Name string
	// SnapRev is the revision the session's snapshot state (base plus delta
	// chain) holds; journal records with rev > SnapRev are the replay tail.
	SnapRev uint64
	// SnapHeld reports whether snapshot state exists at all (a never-edited
	// blank session has none; restore starts from an empty engine).
	SnapHeld bool
	// BaseID, when non-empty, names the session whose frozen base snapshot
	// (<BaseID>.<BaseRev>.tacob) this entry's chain is rooted on — the
	// copy-on-write sharing edge. Empty means the session's own <ID>.tacos
	// file is the base.
	BaseID string
	// BaseRev is the revision the frozen base holds. Meaningful only when
	// BaseID is non-empty (an own-file base is at SnapRev minus the chain).
	BaseRev uint64
	// Chain lists the delta files to replay, in order, on top of the base.
	// Empty means the base alone is the snapshot state.
	Chain []ChainLink
}

// Registry is the persistent session manifest.
type Registry struct {
	mu      sync.Mutex
	w       *Writer
	path    string
	pol     Policy
	sy      *Syncer
	live    map[string]Entry
	appends int // records in the log (live + superseded), drives compaction
}

// OpenRegistry loads (creating if needed) the manifest at path. A torn tail
// from a crash is dropped exactly as for journals; the surviving prefix is
// replayed into the live set.
func OpenRegistry(path string, pol Policy, sy *Syncer) (*Registry, error) {
	r := &Registry{path: path, pol: pol, sy: sy, live: make(map[string]Entry)}
	_, _, err := ScanFile(path, RegistryMagic, func(op uint64, payload []byte) error {
		r.appends++
		e, err := decodeEntry(op, payload)
		if err != nil {
			// Valid CRC but undecodable: a format bug, not corruption. Skip
			// the record rather than losing the whole manifest.
			return nil
		}
		if op == regOpDelete {
			delete(r.live, e.ID)
		} else {
			r.live[e.ID] = e
		}
		return nil
	})
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	r.w, err = Open(path, RegistryMagic, pol, sy)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Put upserts a session entry.
func (r *Registry) Put(e Entry) error {
	payload := appendEntry(nil, e)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.w == nil {
		return ErrClosed
	}
	if err := r.w.Append(regOpPut, payload); err != nil {
		return err
	}
	mRegistryRecords.Inc()
	r.live[e.ID] = e
	r.appends++
	return r.maybeCompactLocked()
}

// Delete records a session's removal.
func (r *Registry) Delete(id string) error {
	payload := appendString(nil, id)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.w == nil {
		return ErrClosed
	}
	if err := r.w.Append(regOpDelete, payload); err != nil {
		return err
	}
	mRegistryRecords.Inc()
	delete(r.live, id)
	r.appends++
	return r.maybeCompactLocked()
}

// Sync applies the policy's durability barrier to the manifest log.
func (r *Registry) Sync() error {
	r.mu.Lock()
	w := r.w
	r.mu.Unlock()
	if w == nil {
		return ErrClosed
	}
	return w.Sync()
}

// Entries snapshots the live set (unspecified order).
func (r *Registry) Entries() []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Entry, 0, len(r.live))
	for _, e := range r.live {
		out = append(out, e)
	}
	return out
}

// Len returns the live session count.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.live)
}

// Close flushes and closes the manifest log.
func (r *Registry) Close() error {
	r.mu.Lock()
	w := r.w
	r.w = nil
	r.mu.Unlock()
	if w == nil {
		return nil
	}
	return w.Close()
}

// maybeCompactLocked rewrites the log to just the live set once superseded
// records dominate it. The floor keeps small registries from compacting on
// every eviction; past it, 4x amplification triggers a rewrite.
func (r *Registry) maybeCompactLocked() error {
	if r.appends < 1024 || r.appends < 4*len(r.live) {
		return nil
	}
	return r.compactLocked()
}

// compactLocked rewrites the manifest as magic + one put per live entry,
// atomically: temp file in the same directory, fsync, rename over the old
// log, reopen. On any failure the old log (and writer) stay in service —
// compaction is an optimisation, never a correctness step.
func (r *Registry) compactLocked() error {
	var buf bytes.Buffer
	buf.Write(RegistryMagic)
	var scratch, rec []byte
	for _, e := range r.live {
		scratch = appendEntry(scratch[:0], e)
		rec = appendRecord(rec[:0], regOpPut, scratch)
		buf.Write(rec)
	}
	tmp := r.path + ".tmp"
	f, err := faultfs.Create(tmp)
	if err != nil {
		return fmt.Errorf("journal: compact registry: %w", err)
	}
	if _, err = f.Write(buf.Bytes()); err == nil && r.pol != SyncNever {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: compact registry: %w", err)
	}
	// Swap under the old writer's feet only after the replacement is fully
	// on disk. Close before rename so no handle still points at the
	// unlinked inode holding appends the new log would silently drop.
	r.w.Close()
	r.w = nil
	if err := faultfs.Rename(tmp, r.path); err != nil {
		os.Remove(tmp)
		// Reopen the (unreplaced) old log so the registry stays writable.
		if w, oerr := Open(r.path, RegistryMagic, r.pol, r.sy); oerr == nil {
			r.w = w
		}
		return fmt.Errorf("journal: compact registry: %w", err)
	}
	if r.pol != SyncNever {
		// The rename itself lives in the directory: without a dir fsync a
		// crash right here can resurface the pre-compaction log even though
		// the replacement was fully synced. Mirrors writeFileAtomic.
		if d, derr := os.Open(filepath.Dir(r.path)); derr == nil {
			d.Sync()
			d.Close()
		}
	}
	w, err := Open(r.path, RegistryMagic, r.pol, r.sy)
	if err != nil {
		return fmt.Errorf("journal: compact registry: reopen: %w", err)
	}
	r.w = w
	r.appends = len(r.live)
	mRegistryCompactions.Inc()
	return nil
}

func appendEntry(dst []byte, e Entry) []byte {
	dst = appendString(dst, e.ID)
	dst = appendString(dst, e.Name)
	var vb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(vb[:], e.SnapRev)
	dst = append(dst, vb[:n]...)
	held := byte(0)
	if e.SnapHeld {
		held = 1
	}
	dst = append(dst, held)
	// The delta-chain extension rides after the original fixed tail, and is
	// written only when present: chain-free entries stay byte-identical to
	// the pre-extension format, and pre-extension decoders (which required
	// the payload to end at the held byte) would reject extended records
	// rather than misread them.
	if e.BaseID == "" && len(e.Chain) == 0 {
		return dst
	}
	dst = appendString(dst, e.BaseID)
	n = binary.PutUvarint(vb[:], e.BaseRev)
	dst = append(dst, vb[:n]...)
	n = binary.PutUvarint(vb[:], uint64(len(e.Chain)))
	dst = append(dst, vb[:n]...)
	for _, l := range e.Chain {
		dst = appendString(dst, l.ID)
		n = binary.PutUvarint(vb[:], l.Rev)
		dst = append(dst, vb[:n]...)
	}
	return dst
}

func decodeEntry(op uint64, payload []byte) (Entry, error) {
	var e Entry
	var err error
	e.ID, payload, err = takeString(payload)
	if err != nil {
		return e, err
	}
	if op == regOpDelete {
		return e, nil
	}
	e.Name, payload, err = takeString(payload)
	if err != nil {
		return e, err
	}
	rev, n := binary.Uvarint(payload)
	if n <= 0 || len(payload) < n+1 {
		return e, fmt.Errorf("journal: malformed registry entry")
	}
	e.SnapRev = rev
	e.SnapHeld = payload[n] != 0
	payload = payload[n+1:]
	if len(payload) == 0 {
		// Pre-extension record: no chain, own-file base.
		return e, nil
	}
	e.BaseID, payload, err = takeString(payload)
	if err != nil {
		return e, err
	}
	if e.BaseRev, n = binary.Uvarint(payload); n <= 0 {
		return e, fmt.Errorf("journal: malformed registry entry")
	}
	payload = payload[n:]
	links, n := binary.Uvarint(payload)
	if n <= 0 || links > maxRegistryChain {
		return e, fmt.Errorf("journal: malformed registry entry")
	}
	payload = payload[n:]
	for i := uint64(0); i < links; i++ {
		var l ChainLink
		l.ID, payload, err = takeString(payload)
		if err != nil {
			return e, err
		}
		if l.Rev, n = binary.Uvarint(payload); n <= 0 {
			return e, fmt.Errorf("journal: malformed registry entry")
		}
		payload = payload[n:]
		e.Chain = append(e.Chain, l)
	}
	if len(payload) != 0 {
		return e, fmt.Errorf("journal: malformed registry entry")
	}
	return e, nil
}

func appendString(dst []byte, s string) []byte {
	var vb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(vb[:], uint64(len(s)))
	dst = append(dst, vb[:n]...)
	return append(dst, s...)
}

func takeString(b []byte) (string, []byte, error) {
	n, m := binary.Uvarint(b)
	if m <= 0 || n > maxRegistryString || uint64(len(b)-m) < n {
		return "", nil, fmt.Errorf("journal: malformed registry string")
	}
	return string(b[m : m+int(n)]), b[m+int(n):], nil
}
