//go:build linux && arm64

package journal

const sysSyncfs = 267
