//go:build linux && (amd64 || arm64)

package journal

import (
	"os"
	"syscall"
)

// syncFS flushes every dirty block of the filesystem holding f in one
// syscall. A store keeps all of its journals and its registry in one spill
// directory, so the background Syncer can replace N per-file fsyncs per tick
// with a single syncfs(2) — the difference between O(sessions) and O(1) disk
// barriers per interval under eviction-heavy load. sysSyncfs comes from the
// per-arch sibling files; Linux syscall numbers are stable ABI, the stdlib
// syscall tables are just frozen too early to include syncfs.
func syncFS(f *os.File) bool {
	_, _, errno := syscall.Syscall(sysSyncfs, f.Fd(), 0, 0)
	return errno == 0
}
