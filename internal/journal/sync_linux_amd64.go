//go:build linux && amd64

package journal

const sysSyncfs = 306
