package experiments

import (
	"bytes"
	"sort"
	"strings"
	"testing"
	"time"

	"taco/internal/core"
	"taco/internal/ref"
)

// tinyConfig keeps experiment tests fast: a very small corpus.
func tinyConfig() Config {
	return Config{Scale: 0.05, Timeout: 5 * time.Second, Out: nil}
}

func TestCorporaDeterministicAndNonEmpty(t *testing.T) {
	a := Corpora(tinyConfig())
	b := Corpora(tinyConfig())
	for _, name := range CorpusNames {
		if len(a[name]) == 0 {
			t.Fatalf("corpus %s empty", name)
		}
		if len(a[name]) != len(b[name]) {
			t.Fatalf("corpus %s nondeterministic", name)
		}
		for i := range a[name] {
			if len(a[name][i].Deps) != len(b[name][i].Deps) {
				t.Fatalf("sheet %d deps differ", i)
			}
		}
	}
}

func TestRunSizesShape(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig()
	cfg.Out = &buf
	res := RunSizes(cfg)
	for _, name := range CorpusNames {
		nc := res[name]["NoComp"]
		inRow := res[name]["TACO-InRow"]
		full := res[name]["TACO-Full"]
		// Paper shape: Full << InRow << NoComp in edges.
		if !(full.Edges < inRow.Edges && inRow.Edges < nc.Edges) {
			t.Fatalf("%s: edges %d/%d/%d violate Full < InRow < NoComp",
				name, full.Edges, inRow.Edges, nc.Edges)
		}
		// TACO-Full compresses to a small fraction.
		frac := float64(full.Edges) / float64(nc.Edges)
		if frac > 0.25 {
			t.Fatalf("%s: TACO-Full fraction %.2f too high", name, frac)
		}
	}
	out := buf.String()
	for _, want := range []string{"Table II", "Table III", "Table IV", "TACO-Full"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable5Shape(t *testing.T) {
	res := RunTable5(tinyConfig())
	for _, name := range CorpusNames {
		agg := res.Patterns[name]
		// RR must dominate, as in the paper.
		rr := agg[core.RR].Total
		for _, p := range []core.PatternType{core.RF, core.FR} {
			if agg[p].Total > rr {
				t.Fatalf("%s: %v (%d) reduced more than RR (%d)", name, p, agg[p].Total, rr)
			}
		}
		if rr == 0 || agg[core.FF].Total == 0 {
			t.Fatalf("%s: RR/FF reductions are zero: %+v", name, agg)
		}
		// RR-GapOne is far less prevalent than RR (Sec. V).
		if res.GapOne[name] >= rr {
			t.Fatalf("%s: gap-one %d >= RR %d", name, res.GapOne[name], rr)
		}
	}
}

func TestRunFig1Shape(t *testing.T) {
	res := RunFig1(tinyConfig())
	for _, name := range CorpusNames {
		sum := 0.0
		for _, f := range res.MaxDependents[name] {
			sum += f
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("%s: bucket fractions sum to %f", name, sum)
		}
	}
}

func TestRunFig10Shape(t *testing.T) {
	res := RunFig10(tinyConfig())
	for _, name := range CorpusNames {
		md := res.MaxDependents[name]
		if len(md.TACO) == 0 || len(md.TACO) != len(md.NoComp) {
			t.Fatalf("%s: sample counts %d/%d", name, len(md.TACO), len(md.NoComp))
		}
	}
}

func TestRunFig11And12Shape(t *testing.T) {
	b := RunFig11(tinyConfig())
	for _, name := range CorpusNames {
		if len(b[name].TACO) == 0 {
			t.Fatalf("%s: no build samples", name)
		}
	}
	m := RunFig12(tinyConfig())
	for _, name := range CorpusNames {
		if len(m[name].TACO) == 0 {
			t.Fatalf("%s: no modify samples", name)
		}
	}
}

func TestRunFig16Shape(t *testing.T) {
	res := RunFig16(tinyConfig())
	for _, name := range CorpusNames {
		if len(res[name]) == 0 {
			t.Fatalf("%s: no rows", name)
		}
		for _, row := range res[name] {
			for _, sys := range Fig16Systems {
				if _, ok := row.Systems[sys]; !ok {
					t.Fatalf("%s/%s missing system %s", name, row.Sheet, sys)
				}
			}
		}
	}
}

func TestRunAccessesShape(t *testing.T) {
	res := RunAccesses(tinyConfig())
	for _, name := range CorpusNames {
		samples := res.MeanPerEdge[name]
		if len(samples) == 0 {
			t.Fatalf("%s: no samples", name)
		}
		// The paper's claim: the 98th percentile of mean accesses per edge
		// stays single-digit (<= 7 on the real corpora).
		if p98 := percentileOf(samples, 98); p98 > 10 {
			t.Fatalf("%s: P98 accesses per edge = %.1f", name, p98)
		}
	}
}

func percentileOf(xs []float64, p float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(s)-1))
	return s[idx]
}

func TestRunCEM(t *testing.T) {
	res := RunCEM(tinyConfig())
	if len(res) < 3 {
		t.Fatalf("cem results = %d", len(res))
	}
	for _, r := range res {
		if r.Exact <= 0 {
			t.Fatalf("%s: exact = %d", r.Name, r.Exact)
		}
		if r.Greedy < r.Exact {
			t.Fatalf("%s: greedy %d beats exact %d", r.Name, r.Greedy, r.Exact)
		}
		// On these regular workloads greedy should match the optimum.
		if r.Greedy != r.Exact {
			t.Fatalf("%s: greedy %d != exact %d", r.Name, r.Greedy, r.Exact)
		}
	}
}

func TestClearRangeFor(t *testing.T) {
	deps := []core.Dependency{
		{Prec: ref.MustRange("A1"), Dep: ref.MustCell("B3")},
		{Prec: ref.MustRange("A2"), Dep: ref.MustCell("B4")},
		{Prec: ref.MustRange("A1"), Dep: ref.MustCell("C9")},
	}
	r := clearRangeFor(deps)
	if r.Head != ref.MustCell("B3") || r.Rows() != 1000 {
		t.Fatalf("clear range = %v", r)
	}
}

func TestRunWithTimeout(t *testing.T) {
	cfg := tinyConfig()
	cfg.Timeout = 50 * time.Millisecond
	if ms := runWithTimeout(cfg, func() {}); ms == DNF {
		t.Fatal("instant fn marked DNF")
	}
	if ms := runWithTimeout(cfg, func() { time.Sleep(500 * time.Millisecond) }); ms != DNF {
		t.Fatalf("slow fn = %v, want DNF", ms)
	}
}
