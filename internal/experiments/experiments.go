// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. VI) on the synthetic corpora. Each RunXxx function
// executes one experiment, prints the same rows/series the paper reports,
// and returns the structured results so benchmarks and tests can assert on
// the shapes (who wins, by roughly what factor) without re-parsing text.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"taco/internal/antifreeze"
	"taco/internal/calcgraph"
	"taco/internal/core"
	"taco/internal/excelsim"
	"taco/internal/graphdb"
	"taco/internal/nocomp"
	"taco/internal/ref"
	"taco/internal/stats"
	"taco/internal/workload"
)

// Config controls corpus scale and output.
type Config struct {
	// Scale multiplies corpus sizes; 1.0 is the laptop-friendly default.
	Scale float64
	// Timeout marks a baseline run as DNF, mirroring the paper's 300 s
	// build / 60 s query cut-offs (scaled down by default).
	Timeout time.Duration
	// Out receives the printed tables; nil discards them.
	Out io.Writer
}

// DefaultConfig returns the defaults used by `tacobench` without flags.
func DefaultConfig() Config {
	return Config{Scale: 1.0, Timeout: 10 * time.Second, Out: io.Discard}
}

func (c Config) printf(format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}

// SheetData bundles a generated sheet with its parsed dependencies.
type SheetData struct {
	Corpus string
	Sheet  *workload.Sheet
	Deps   []core.Dependency
}

// Corpora generates both synthetic corpora at the configured scale.
func Corpora(cfg Config) map[string][]SheetData {
	out := map[string][]SheetData{}
	for _, spec := range []workload.CorpusSpec{
		workload.EnronSpec(cfg.Scale), workload.GithubSpec(cfg.Scale),
	} {
		for _, s := range workload.Generate(spec) {
			out[spec.Name] = append(out[spec.Name], SheetData{
				Corpus: spec.Name, Sheet: s, Deps: s.MustDependencies(),
			})
		}
	}
	return out
}

// CorpusNames orders corpus output deterministically.
var CorpusNames = []string{"Enron", "Github"}

// ---------------------------------------------------------------------------
// Fig. 1 — probability distributions of max dependents and longest path.
// ---------------------------------------------------------------------------

// Fig1Result holds the per-corpus bucket fractions.
type Fig1Result struct {
	MaxDependents map[string][]float64
	LongestPath   map[string][]float64
}

// RunFig1 computes and prints the Fig. 1 distributions.
func RunFig1(cfg Config) Fig1Result {
	corp := Corpora(cfg)
	res := Fig1Result{
		MaxDependents: map[string][]float64{},
		LongestPath:   map[string][]float64{},
	}
	for _, name := range CorpusNames {
		var maxDeps, longest []float64
		for _, sd := range corp[name] {
			m := workload.Metrics(sd.Deps)
			maxDeps = append(maxDeps, float64(m.MaxDependents))
			longest = append(longest, float64(m.LongestPath))
		}
		res.MaxDependents[name] = stats.Bucketize(maxDeps)
		res.LongestPath[name] = stats.Bucketize(longest)

		t := stats.NewTable(append([]string{name}, stats.Fig1BucketLabels...)...)
		rowOf := func(label string, fr []float64) {
			cells := make([]any, 0, len(fr)+1)
			cells = append(cells, label)
			for _, f := range fr {
				cells = append(cells, stats.FormatFloat(f))
			}
			t.AddRow(cells...)
		}
		rowOf("Maximum Dependents", res.MaxDependents[name])
		rowOf("Longest Path", res.LongestPath[name])
		cfg.printf("Fig. 1 — %s\n%s\n", name, t)
	}
	return res
}

// ---------------------------------------------------------------------------
// Tables II-IV — compressed graph sizes.
// ---------------------------------------------------------------------------

// SizeResult holds the Table II totals and the per-sheet series behind
// Tables III and IV for one corpus/variant pair.
type SizeResult struct {
	Vertices, Edges int
	// ReducedPerSheet is |E'| - |E| per sheet (Table III).
	ReducedPerSheet []float64
	// FractionPerSheet is |E| / |E'| per sheet (Table IV).
	FractionPerSheet []float64
}

// SizesResult maps corpus -> variant -> result. Variants: "NoComp",
// "TACO-InRow", "TACO-Full".
type SizesResult map[string]map[string]SizeResult

// RunSizes computes Tables II, III and IV.
func RunSizes(cfg Config) SizesResult {
	corp := Corpora(cfg)
	out := SizesResult{}
	for _, name := range CorpusNames {
		variants := map[string]SizeResult{}
		var noComp, inRow, full SizeResult
		for _, sd := range corp[name] {
			nc := nocomp.Build(sd.Deps)
			noComp.Vertices += nc.NumVertices()
			noComp.Edges += nc.NumEdges()

			for _, v := range []struct {
				res  *SizeResult
				opts core.Options
			}{
				{&inRow, core.InRowOptions()},
				{&full, core.DefaultOptions()},
			} {
				g := core.Build(sd.Deps, v.opts)
				v.res.Vertices += g.NumVertices()
				v.res.Edges += g.NumEdges()
				reduced := float64(len(sd.Deps) - g.NumEdges())
				v.res.ReducedPerSheet = append(v.res.ReducedPerSheet, reduced)
				v.res.FractionPerSheet = append(v.res.FractionPerSheet,
					float64(g.NumEdges())/float64(len(sd.Deps)))
			}
		}
		variants["NoComp"] = noComp
		variants["TACO-InRow"] = inRow
		variants["TACO-Full"] = full
		out[name] = variants
	}

	// Table II.
	t2 := stats.NewTable("Corpus", "Variant", "Vertices", "Edges", "Vert%", "Edge%")
	for _, name := range CorpusNames {
		nc := out[name]["NoComp"]
		for _, variant := range []string{"NoComp", "TACO-InRow", "TACO-Full"} {
			v := out[name][variant]
			t2.AddRow(name, variant,
				stats.FormatCount(v.Vertices), stats.FormatCount(v.Edges),
				stats.FormatPercent(float64(v.Vertices)/float64(nc.Vertices)),
				stats.FormatPercent(float64(v.Edges)/float64(nc.Edges)))
		}
	}
	cfg.printf("Table II — graph sizes after compression (lower is better)\n%s\n", t2)

	// Table III.
	t3 := stats.NewTable("Corpus", "Variant", "Max", "75th per.", "Median", "Mean")
	for _, name := range CorpusNames {
		for _, variant := range []string{"TACO-InRow", "TACO-Full"} {
			v := out[name][variant]
			t3.AddRow(name, variant,
				stats.FormatCount(int(stats.Max(v.ReducedPerSheet))),
				stats.FormatCount(int(stats.Percentile(v.ReducedPerSheet, 75))),
				stats.FormatCount(int(stats.Percentile(v.ReducedPerSheet, 50))),
				stats.FormatCount(int(stats.Mean(v.ReducedPerSheet))))
		}
	}
	cfg.printf("Table III — number of edges reduced (higher is better)\n%s\n", t3)

	// Table IV.
	t4 := stats.NewTable("Corpus", "Variant", "Min", "25th per.", "Median", "Mean")
	for _, name := range CorpusNames {
		for _, variant := range []string{"TACO-InRow", "TACO-Full"} {
			v := out[name][variant]
			t4.AddRow(name, variant,
				stats.FormatPercent(stats.Min(v.FractionPerSheet)),
				stats.FormatPercent(stats.Percentile(v.FractionPerSheet, 25)),
				stats.FormatPercent(stats.Percentile(v.FractionPerSheet, 50)),
				stats.FormatPercent(stats.Mean(v.FractionPerSheet)))
		}
	}
	cfg.printf("Table IV — remaining edges after compression (lower is better)\n%s\n", t4)
	return out
}

// ---------------------------------------------------------------------------
// Table V — edges reduced per pattern, plus the RR-GapOne prevalence note.
// ---------------------------------------------------------------------------

// PatternResult aggregates edges reduced by one pattern over a corpus.
type PatternResult struct {
	Total int
	Max   int // largest reduction in a single sheet
}

// Table5Result maps corpus -> pattern -> aggregate, with GapOne holding the
// Sec. V prevalence comparison.
type Table5Result struct {
	Patterns map[string]map[core.PatternType]PatternResult
	GapOne   map[string]int
	RRTotal  map[string]int
}

// RunTable5 computes Table V.
func RunTable5(cfg Config) Table5Result {
	corp := Corpora(cfg)
	res := Table5Result{
		Patterns: map[string]map[core.PatternType]PatternResult{},
		GapOne:   map[string]int{},
		RRTotal:  map[string]int{},
	}
	order := []core.PatternType{core.RR, core.RF, core.FR, core.FF, core.RRChain}
	for _, name := range CorpusNames {
		agg := map[core.PatternType]PatternResult{}
		for _, sd := range corp[name] {
			g := core.Build(sd.Deps, core.DefaultOptions())
			for p, st := range g.PatternStats() {
				a := agg[p]
				a.Total += st.Reduced
				if st.Reduced > a.Max {
					a.Max = st.Reduced
				}
				agg[p] = a
			}
			res.GapOne[name] += core.GapOneReduction(sd.Deps)
		}
		res.Patterns[name] = agg
		res.RRTotal[name] = agg[core.RR].Total
	}
	t := stats.NewTable("Pattern", "Enron Total", "Enron Max", "Github Total", "Github Max")
	for _, p := range order {
		t.AddRow(p.String(),
			stats.FormatCount(res.Patterns["Enron"][p].Total),
			stats.FormatCount(res.Patterns["Enron"][p].Max),
			stats.FormatCount(res.Patterns["Github"][p].Total),
			stats.FormatCount(res.Patterns["Github"][p].Max))
	}
	cfg.printf("Table V — num. of edges reduced by each pattern (higher is better)\n%s", t)
	cfg.printf("Sec. V note — RR-GapOne would reduce %s (Enron) and %s (Github) edges vs RR's %s and %s\n\n",
		stats.FormatCount(res.GapOne["Enron"]), stats.FormatCount(res.GapOne["Github"]),
		stats.FormatCount(res.RRTotal["Enron"]), stats.FormatCount(res.RRTotal["Github"]))
	return res
}

// ---------------------------------------------------------------------------
// Figs. 10-12 — CDFs of find/build/modify latency, TACO vs NoComp.
// ---------------------------------------------------------------------------

// CDFFracs are the fractions at which the harness samples latency CDFs.
var CDFFracs = []float64{0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0}

// LatencyCDFs holds per-system latency samples in milliseconds.
type LatencyCDFs struct {
	TACO   []float64
	NoComp []float64
}

// MaxSpeedup returns the largest NoComp/TACO ratio across matching samples.
func (l LatencyCDFs) MaxSpeedup() float64 {
	best := 0.0
	for i := range l.TACO {
		if i < len(l.NoComp) && l.TACO[i] > 0 {
			if s := l.NoComp[i] / l.TACO[i]; s > best {
				best = s
			}
		}
	}
	return best
}

// Fig10Result holds the two query cases per corpus.
type Fig10Result struct {
	MaxDependents map[string]LatencyCDFs
	LongestPath   map[string]LatencyCDFs
}

// RunFig10 measures the time to find dependents from the max-dependents and
// longest-path cells of every sheet, for TACO and NoComp.
func RunFig10(cfg Config) Fig10Result {
	corp := Corpora(cfg)
	res := Fig10Result{
		MaxDependents: map[string]LatencyCDFs{},
		LongestPath:   map[string]LatencyCDFs{},
	}
	for _, name := range CorpusNames {
		var md, lp LatencyCDFs
		for _, sd := range corp[name] {
			m := workload.Metrics(sd.Deps)
			tg := core.Build(sd.Deps, core.DefaultOptions())
			ng := nocomp.Build(sd.Deps)
			for _, q := range []struct {
				seed ref.Ref
				dst  *LatencyCDFs
			}{
				{m.MaxDependentsCell, &md},
				{m.LongestPathCell, &lp},
			} {
				if !q.seed.Valid() {
					continue
				}
				r := ref.CellRange(q.seed)
				q.dst.TACO = append(q.dst.TACO, timeMS(func() { tg.FindDependents(r) }))
				q.dst.NoComp = append(q.dst.NoComp, timeMS(func() { ng.FindDependents(r) }))
			}
		}
		res.MaxDependents[name] = md
		res.LongestPath[name] = lp
		printCDF(cfg, fmt.Sprintf("Fig. 10 — find dependents, Maximum Dependents (%s)", name), md)
		printCDF(cfg, fmt.Sprintf("Fig. 10 — find dependents, Longest Path (%s)", name), lp)
	}
	return res
}

// Fig11Result holds build-time samples per corpus.
type Fig11Result map[string]LatencyCDFs

// RunFig11 measures formula-graph build time for TACO and NoComp.
func RunFig11(cfg Config) Fig11Result {
	corp := Corpora(cfg)
	res := Fig11Result{}
	for _, name := range CorpusNames {
		var l LatencyCDFs
		for _, sd := range corp[name] {
			deps := sd.Deps
			l.TACO = append(l.TACO, timeMS(func() { core.Build(deps, core.DefaultOptions()) }))
			l.NoComp = append(l.NoComp, timeMS(func() { nocomp.Build(deps) }))
		}
		res[name] = l
		printCDF(cfg, fmt.Sprintf("Fig. 11 — build formula graph (%s)", name), l)
	}
	return res
}

// Fig12Result holds modify-time samples per corpus.
type Fig12Result map[string]LatencyCDFs

// RunFig12 measures graph maintenance: clearing a column of 1K formula cells
// starting at the max-dependents cell's column (scaled to sheet height).
func RunFig12(cfg Config) Fig12Result {
	corp := Corpora(cfg)
	res := Fig12Result{}
	for _, name := range CorpusNames {
		var l LatencyCDFs
		for _, sd := range corp[name] {
			clear := clearRangeFor(sd.Deps)
			tg := core.Build(sd.Deps, core.DefaultOptions())
			ng := nocomp.Build(sd.Deps)
			l.TACO = append(l.TACO, timeMS(func() { tg.Clear(clear) }))
			l.NoComp = append(l.NoComp, timeMS(func() { ng.Clear(clear) }))
		}
		res[name] = l
		printCDF(cfg, fmt.Sprintf("Fig. 12 — modify formula graph (%s)", name), l)
	}
	return res
}

// clearRangeFor picks the 1K-cell column segment the paper clears: starting
// at the formula cell with the most direct dependents' column top.
func clearRangeFor(deps []core.Dependency) ref.Range {
	// Use the column with the most formula cells.
	count := map[int]int{}
	minRow := map[int]int{}
	for _, d := range deps {
		count[d.Dep.Col]++
		if mr, ok := minRow[d.Dep.Col]; !ok || d.Dep.Row < mr {
			minRow[d.Dep.Col] = d.Dep.Row
		}
	}
	bestCol, bestN := 0, -1
	for col, n := range count {
		if n > bestN || (n == bestN && col < bestCol) {
			bestCol, bestN = col, n
		}
	}
	top := minRow[bestCol]
	return ref.RangeOf(ref.Ref{Col: bestCol, Row: top}, ref.Ref{Col: bestCol, Row: top + 999})
}

func timeMS(fn func()) float64 {
	start := time.Now()
	fn()
	return float64(time.Since(start).Microseconds()) / 1000.0
}

func printCDF(cfg Config, title string, l LatencyCDFs) {
	t := stats.NewTable("Percentile", "TACO (ms)", "NoComp (ms)")
	tacoPts := stats.CDFAt(l.TACO, CDFFracs)
	ncPts := stats.CDFAt(l.NoComp, CDFFracs)
	for i, f := range CDFFracs {
		t.AddRow(fmt.Sprintf("%.0f%%", f*100),
			stats.FormatFloat(tacoPts[i].Value), stats.FormatFloat(ncPts[i].Value))
	}
	cfg.printf("%s\n%sMax speedup: %.0fx\n\n", title, t, l.MaxSpeedup())
}

// ---------------------------------------------------------------------------
// Figs. 13-16 — the top-10 hardest sheets against all baselines.
// ---------------------------------------------------------------------------

// DNF marks a did-not-finish measurement.
const DNF = -1.0

// BaselineRow is one sheet's latency per system, in milliseconds (DNF = -1).
type BaselineRow struct {
	Sheet   string
	Systems map[string]float64
}

// BaselineResult is a list of rows per corpus.
type BaselineResult map[string][]BaselineRow

// runWithTimeout runs fn, returning its duration in ms or DNF when it
// exceeds the configured timeout. The runaway goroutine is abandoned, like
// the paper's killed processes.
func runWithTimeout(cfg Config, fn func()) float64 {
	done := make(chan float64, 1)
	go func() {
		done <- timeMS(fn)
	}()
	select {
	case ms := <-done:
		return ms
	case <-time.After(cfg.Timeout):
		return DNF
	}
}

// topSheets returns up to n sheets with the largest score.
func topSheets(sheets []SheetData, n int, score func(SheetData) float64) []SheetData {
	type scored struct {
		sd SheetData
		v  float64
	}
	list := make([]scored, 0, len(sheets))
	for _, sd := range sheets {
		list = append(list, scored{sd, score(sd)})
	}
	sort.SliceStable(list, func(i, j int) bool { return list[i].v > list[j].v })
	if len(list) > n {
		list = list[:n]
	}
	out := make([]SheetData, len(list))
	for i, s := range list {
		out[i] = s.sd
	}
	return out
}

// Fig13Systems orders the systems of Figs. 13-15.
var Fig13Systems = []string{"TACO", "NoComp", "GraphDB", "Antifreeze"}

// RunFig13to15 measures build, find-dependents, and modify latency for TACO,
// NoComp, the RedisGraph stand-in, and Antifreeze on the top-10 sheets by
// TACO build time per corpus. It returns (build, find, modify) results.
func RunFig13to15(cfg Config) (BaselineResult, BaselineResult, BaselineResult) {
	corp := Corpora(cfg)
	build, find, modify := BaselineResult{}, BaselineResult{}, BaselineResult{}
	for _, name := range CorpusNames {
		top := topSheets(corp[name], 10, func(sd SheetData) float64 {
			return timeMS(func() { core.Build(sd.Deps, core.DefaultOptions()) })
		})
		for i, sd := range top {
			label := fmt.Sprintf("max%d", i+1)
			deps := sd.Deps
			m := workload.Metrics(deps)
			seed := ref.CellRange(m.MaxDependentsCell)
			clear := clearRangeFor(deps)

			bRow := BaselineRow{Sheet: label, Systems: map[string]float64{}}
			fRow := BaselineRow{Sheet: label, Systems: map[string]float64{}}
			mRow := BaselineRow{Sheet: label, Systems: map[string]float64{}}

			// TACO.
			var tg *core.Graph
			bRow.Systems["TACO"] = runWithTimeout(cfg, func() { tg = core.Build(deps, core.DefaultOptions()) })
			if tg != nil {
				fRow.Systems["TACO"] = runWithTimeout(cfg, func() { tg.FindDependents(seed) })
				mRow.Systems["TACO"] = runWithTimeout(cfg, func() { tg.Clear(clear) })
			}
			// NoComp.
			var ng *nocomp.Graph
			bRow.Systems["NoComp"] = runWithTimeout(cfg, func() { ng = nocomp.Build(deps) })
			if ng != nil {
				fRow.Systems["NoComp"] = runWithTimeout(cfg, func() { ng.FindDependents(seed) })
				mRow.Systems["NoComp"] = runWithTimeout(cfg, func() { ng.Clear(clear) })
			}
			// GraphDB (RedisGraph stand-in): decomposed bulk load. The edge
			// cap models the memory exhaustion the paper observed.
			var store *graphdb.Store
			bRow.Systems["GraphDB"] = runWithTimeout(cfg, func() {
				if st, ok := graphdb.BuildCapped(deps, 5_000_000); ok {
					store = st
				}
			})
			if bRow.Systems["GraphDB"] == DNF || store == nil {
				bRow.Systems["GraphDB"] = DNF
			}
			if bRow.Systems["GraphDB"] == DNF || store == nil {
				fRow.Systems["GraphDB"] = DNF
				mRow.Systems["GraphDB"] = DNF
			} else {
				fRow.Systems["GraphDB"] = runWithTimeout(cfg, func() { store.FindDependents(seed) })
				mRow.Systems["GraphDB"] = runWithTimeout(cfg, func() { store.Clear(clear) })
			}
			// Antifreeze: the budget callback enforces the DNF timeout
			// cooperatively (its build would otherwise run for hours).
			var tbl *antifreeze.Table
			deadline := time.Now().Add(cfg.Timeout)
			bRow.Systems["Antifreeze"] = runWithTimeout(cfg, func() {
				t := antifreeze.Build(deps, 0, func() bool { return time.Now().Before(deadline) })
				if time.Now().Before(deadline) {
					tbl = t
				}
			})
			if time.Now().After(deadline) {
				bRow.Systems["Antifreeze"] = DNF
			}
			if tbl == nil || bRow.Systems["Antifreeze"] == DNF {
				bRow.Systems["Antifreeze"] = DNF
				fRow.Systems["Antifreeze"] = DNF
				mRow.Systems["Antifreeze"] = DNF
			} else {
				fRow.Systems["Antifreeze"] = runWithTimeout(cfg, func() { tbl.FindDependents(seed) })
				mRow.Systems["Antifreeze"] = runWithTimeout(cfg, func() { tbl.Clear(clear) })
			}

			build[name] = append(build[name], bRow)
			find[name] = append(find[name], fRow)
			modify[name] = append(modify[name], mRow)
		}
	}
	printBaseline(cfg, "Fig. 13 — latency on building graphs", build, Fig13Systems)
	printBaseline(cfg, "Fig. 14 — latency on finding dependents", find, Fig13Systems)
	printBaseline(cfg, "Fig. 15 — latency on modifying graphs", modify, Fig13Systems)
	return build, find, modify
}

// Fig16Systems orders the systems of Fig. 16.
var Fig16Systems = []string{"TACO", "NoComp", "NoComp-Calc", "ExcelSim"}

// RunFig16 measures find-dependents latency for TACO, NoComp, NoComp-Calc
// (container-partitioned) and the Excel model on the top-10 sheets by TACO
// find time.
func RunFig16(cfg Config) BaselineResult {
	corp := Corpora(cfg)
	out := BaselineResult{}
	for _, name := range CorpusNames {
		top := topSheets(corp[name], 10, func(sd SheetData) float64 {
			g := core.Build(sd.Deps, core.DefaultOptions())
			m := workload.Metrics(sd.Deps)
			if !m.MaxDependentsCell.Valid() {
				return 0
			}
			return timeMS(func() { g.FindDependents(ref.CellRange(m.MaxDependentsCell)) })
		})
		for i, sd := range top {
			label := fmt.Sprintf("max%d", i+1)
			deps := sd.Deps
			m := workload.Metrics(deps)
			seed := ref.CellRange(m.MaxDependentsCell)
			row := BaselineRow{Sheet: label, Systems: map[string]float64{}}

			tg := core.Build(deps, core.DefaultOptions())
			row.Systems["TACO"] = runWithTimeout(cfg, func() { tg.FindDependents(seed) })
			ng := nocomp.Build(deps)
			row.Systems["NoComp"] = runWithTimeout(cfg, func() { ng.FindDependents(seed) })
			cg := calcgraph.Build(deps)
			row.Systems["NoComp-Calc"] = runWithTimeout(cfg, func() { cg.FindDependents(seed) })
			wb := excelsim.Build(deps)
			row.Systems["ExcelSim"] = runWithTimeout(cfg, func() { wb.FindDependents(seed) })

			out[name] = append(out[name], row)
		}
	}
	printBaseline(cfg, "Fig. 16 — latency on finding dependents (Excel model and NoComp-Calc)", out, Fig16Systems)
	return out
}

func printBaseline(cfg Config, title string, res BaselineResult, systems []string) {
	header := append([]string{"Corpus", "Sheet"}, systems...)
	t := stats.NewTable(header...)
	for _, name := range CorpusNames {
		for _, row := range res[name] {
			cells := []any{name, row.Sheet}
			for _, sys := range systems {
				v, ok := row.Systems[sys]
				if !ok || v == DNF {
					cells = append(cells, "DNF(X)")
				} else {
					cells = append(cells, stats.FormatFloat(v)+"ms")
				}
			}
			t.AddRow(cells...)
		}
	}
	cfg.printf("%s\n%s\n", title, t)
}

// ---------------------------------------------------------------------------
// Sec. IV-D — edge accesses during the compressed BFS.
// ---------------------------------------------------------------------------

// AccessResult summarises the mean-accesses-per-edge distribution across
// query tests per corpus.
type AccessResult struct {
	// MeanPerEdge holds one sample per query: accesses / distinct edges.
	MeanPerEdge map[string][]float64
}

// RunAccesses measures, for the Fig. 10 query set, how often the traversal
// re-accesses compressed edges. The paper observes the mean accesses per
// edge is <= 7 for 98% of tests — the empirical reason the Case 2 worst case
// of Table I does not bite.
func RunAccesses(cfg Config) AccessResult {
	corp := Corpora(cfg)
	res := AccessResult{MeanPerEdge: map[string][]float64{}}
	for _, name := range CorpusNames {
		for _, sd := range corp[name] {
			m := workload.Metrics(sd.Deps)
			g := core.Build(sd.Deps, core.DefaultOptions())
			for _, seed := range []ref.Ref{m.MaxDependentsCell, m.LongestPathCell} {
				if !seed.Valid() {
					continue
				}
				_, st := g.FindDependentsStats(ref.CellRange(seed))
				if st.DistinctEdges > 0 {
					res.MeanPerEdge[name] = append(res.MeanPerEdge[name], st.MeanAccessesPerEdge())
				}
			}
		}
		samples := res.MeanPerEdge[name]
		t := stats.NewTable("Corpus", "Median", "P90", "P98", "Max")
		t.AddRow(name,
			stats.FormatFloat(stats.Percentile(samples, 50)),
			stats.FormatFloat(stats.Percentile(samples, 90)),
			stats.FormatFloat(stats.Percentile(samples, 98)),
			stats.FormatFloat(stats.Max(samples)))
		cfg.printf("Sec. IV-D — mean edge accesses per touched edge during BFS (%s)\n%s\n", name, t)
	}
	return res
}

// ---------------------------------------------------------------------------
// CEM — greedy vs exact on tiny inputs (Sec. IV-A).
// ---------------------------------------------------------------------------

// CEMResult compares the greedy compressor against the exact partition
// search per tiny workload.
type CEMResult struct {
	Name   string
	Exact  int
	Greedy int
}

// RunCEM compares greedy and exact CEM on small crafted workloads.
func RunCEM(cfg Config) []CEMResult {
	workloads := []struct {
		name string
		deps []core.Dependency
	}{
		{"ff-run", func() []core.Dependency {
			var out []core.Dependency
			for row := 1; row <= 8; row++ {
				out = append(out, core.Dependency{Prec: ref.MustRange("A1:B2"), Dep: ref.Ref{Col: 3, Row: row}})
			}
			return out
		}()},
		{"mixed-runs", func() []core.Dependency {
			var out []core.Dependency
			for row := 1; row <= 4; row++ {
				out = append(out, core.Dependency{
					Prec: ref.RangeOf(ref.Ref{Col: 1, Row: row}, ref.Ref{Col: 1, Row: row + 1}),
					Dep:  ref.Ref{Col: 3, Row: row},
				})
			}
			for row := 5; row <= 8; row++ {
				out = append(out, core.Dependency{Prec: ref.MustRange("B1:B9"), Dep: ref.Ref{Col: 3, Row: row}})
			}
			return out
		}()},
		{"chain+lookup", func() []core.Dependency {
			var out []core.Dependency
			for row := 2; row <= 6; row++ {
				out = append(out, core.Dependency{
					Prec: ref.CellRange(ref.Ref{Col: 1, Row: row - 1}), Dep: ref.Ref{Col: 1, Row: row},
				})
			}
			for row := 1; row <= 5; row++ {
				out = append(out, core.Dependency{Prec: ref.MustRange("Z1"), Dep: ref.Ref{Col: 2, Row: row}})
			}
			return out
		}()},
	}
	var res []CEMResult
	t := stats.NewTable("Workload", "Deps", "Exact |E|", "Greedy |E|")
	for _, w := range workloads {
		exact, _ := core.ExactCEM(w.deps, core.DefaultOptions())
		greedy := core.GreedyCEM(w.deps, core.DefaultOptions())
		res = append(res, CEMResult{Name: w.name, Exact: exact, Greedy: greedy})
		t.AddRow(w.name, len(w.deps), exact, greedy)
	}
	cfg.printf("Sec. IV-A — greedy vs exact CEM (NP-hard; exact is Bell-number search)\n%s\n", t)
	return res
}
