package stats

// LatencySummary condenses a latency sample into the percentiles a serving
// benchmark reports. All values are milliseconds; the JSON tags define the
// machine-readable schema of BENCH_*.json perf baselines.
type LatencySummary struct {
	Count  int     `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Summarize computes a LatencySummary from millisecond samples.
func Summarize(ms []float64) LatencySummary {
	return LatencySummary{
		Count:  len(ms),
		MeanMs: Mean(ms),
		P50Ms:  Percentile(ms, 50),
		P90Ms:  Percentile(ms, 90),
		P99Ms:  Percentile(ms, 99),
		MaxMs:  Max(ms),
	}
}
