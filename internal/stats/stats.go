// Package stats provides the distribution summaries the paper's experiment
// tables and figures report: percentiles (Tables III-IV), CDF series
// (Figs. 10-12), and the logarithmic buckets of Fig. 1.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// nearest-rank interpolation. It returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Mean returns the arithmetic mean, 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum, 0 for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum, 0 for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// CDFPoint is one (value, cumulative fraction) sample.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF returns the empirical CDF of xs: for each sorted value, the fraction
// of samples <= it.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	for i, v := range s {
		out[i] = CDFPoint{Value: v, Fraction: float64(i+1) / float64(len(s))}
	}
	return out
}

// CDFAt evaluates the empirical CDF at selected percentile fractions,
// producing the compact series the harness prints for Figs. 10-12.
func CDFAt(xs []float64, fracs []float64) []CDFPoint {
	out := make([]CDFPoint, len(fracs))
	for i, f := range fracs {
		out[i] = CDFPoint{Value: Percentile(xs, f*100), Fraction: f}
	}
	return out
}

// Fig1Buckets are the paper's Fig. 1 bucket upper bounds: (0,100],
// (100,1000], (1000,10000], (10000,+inf).
var Fig1Buckets = []float64{100, 1000, 10000}

// Fig1BucketLabels labels the buckets for display.
var Fig1BucketLabels = []string{"(0,100]", "(100,1000]", "(1000,10000]", "(10000,+)"}

// Bucketize returns the fraction of samples in each Fig. 1 bucket.
func Bucketize(xs []float64) []float64 {
	counts := make([]float64, len(Fig1Buckets)+1)
	for _, x := range xs {
		placed := false
		for i, ub := range Fig1Buckets {
			if x <= ub {
				counts[i]++
				placed = true
				break
			}
		}
		if !placed {
			counts[len(Fig1Buckets)]++
		}
	}
	if len(xs) > 0 {
		for i := range counts {
			counts[i] /= float64(len(xs))
		}
	}
	return counts
}

// Durations converts time.Durations to float64 milliseconds.
func Durations(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d.Microseconds()) / 1000.0
	}
	return out
}

// Table is a minimal fixed-width table printer for the experiment harness.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case time.Duration:
			row[i] = FormatMillis(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// FormatFloat renders a float compactly (2 decimals, trimming zeros).
func FormatFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// FormatMillis renders a duration in milliseconds with 3 significant
// decimals, matching the paper's latency axes.
func FormatMillis(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000.0)
}

// FormatCount renders large counts with thousands separators (1234567 ->
// "1,234,567"), the style of the paper's tables.
func FormatCount(n int) string {
	s := fmt.Sprintf("%d", n)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// FormatPercent renders a fraction as a percentage with two decimals.
func FormatPercent(f float64) string {
	return fmt.Sprintf("%.2f%%", f*100)
}
