package stats

import (
	"strings"
	"testing"
	"time"
)

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{10}, 50); got != 10 {
		t.Errorf("single-element P50 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty P50 = %v", got)
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{0, 10}, 50); got != 5 {
		t.Errorf("interpolated P50 = %v", got)
	}
	// Input must not be mutated.
	xs2 := []float64{3, 1, 2}
	Percentile(xs2, 50)
	if xs2[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{2, 4, 9}
	if Mean(xs) != 5 || Min(xs) != 2 || Max(xs) != 9 {
		t.Errorf("mean/min/max = %v %v %v", Mean(xs), Min(xs), Max(xs))
	}
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty aggregates should be 0")
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 || pts[0].Value != 1 || pts[2].Fraction != 1 {
		t.Fatalf("CDF = %v", pts)
	}
	if pts[1].Fraction <= pts[0].Fraction {
		t.Fatal("CDF fractions must increase")
	}
	if CDF(nil) != nil {
		t.Fatal("empty CDF should be nil")
	}
	at := CDFAt([]float64{1, 2, 3, 4}, []float64{0.5, 1.0})
	if at[1].Value != 4 {
		t.Fatalf("CDFAt = %v", at)
	}
}

func TestBucketize(t *testing.T) {
	fr := Bucketize([]float64{50, 500, 5000, 50000})
	for i, want := range []float64{0.25, 0.25, 0.25, 0.25} {
		if fr[i] != want {
			t.Fatalf("bucket %d = %v", i, fr[i])
		}
	}
	if len(Fig1BucketLabels) != len(fr) {
		t.Fatal("label count mismatch")
	}
	empty := Bucketize(nil)
	for _, v := range empty {
		if v != 0 {
			t.Fatal("empty bucketize should be zeros")
		}
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 3.14159)
	tb.AddRow("b", 250*time.Millisecond)
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "3.14") {
		t.Fatalf("table output:\n%s", out)
	}
	if !strings.Contains(out, "250.000ms") {
		t.Fatalf("duration formatting:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestFormatting(t *testing.T) {
	if FormatCount(1234567) != "1,234,567" {
		t.Errorf("FormatCount = %s", FormatCount(1234567))
	}
	if FormatCount(42) != "42" {
		t.Errorf("FormatCount = %s", FormatCount(42))
	}
	if FormatCount(-1234) != "-1,234" {
		t.Errorf("FormatCount = %s", FormatCount(-1234))
	}
	if FormatPercent(0.0342) != "3.42%" {
		t.Errorf("FormatPercent = %s", FormatPercent(0.0342))
	}
	if FormatFloat(2.50) != "2.5" || FormatFloat(3.0) != "3" {
		t.Errorf("FormatFloat = %s %s", FormatFloat(2.5), FormatFloat(3))
	}
	if FormatMillis(1500*time.Microsecond) != "1.500ms" {
		t.Errorf("FormatMillis = %s", FormatMillis(1500*time.Microsecond))
	}
}

func TestDurations(t *testing.T) {
	ds := Durations([]time.Duration{time.Millisecond, 2500 * time.Microsecond})
	if ds[0] != 1 || ds[1] != 2.5 {
		t.Fatalf("Durations = %v", ds)
	}
}
