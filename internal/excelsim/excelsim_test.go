package excelsim

import (
	"math/rand"
	"testing"

	"taco/internal/core"
	"taco/internal/nocomp"
	"taco/internal/ref"
	"taco/internal/workload"
)

func cellsOf(rs []ref.Range) map[ref.Ref]bool {
	out := map[ref.Ref]bool{}
	for _, g := range rs {
		g.Cells(func(c ref.Ref) bool {
			out[c] = true
			return true
		})
	}
	return out
}

func TestDedupCollapsesAutofillRuns(t *testing.T) {
	s := workload.NewSheet("t")
	rng := rand.New(rand.NewSource(1))
	s.AddDataColumn(1, 100, rng)
	s.AddSlidingWindow(2, 1, 3, 100)
	deps := s.MustDependencies()
	wb := Build(deps)
	if wb.NumCells() != 98 {
		t.Fatalf("cells = %d", wb.NumCells())
	}
	// The whole run shares one master: Excel's pointer-to-first-formula.
	if wb.NumMasters() != 1 {
		t.Fatalf("masters = %d, want 1", wb.NumMasters())
	}
}

func TestMixedFormulasKeepSeparateMasters(t *testing.T) {
	deps := []core.Dependency{
		{Prec: ref.MustRange("A1"), Dep: ref.MustCell("B1")},
		{Prec: ref.MustRange("A1:A2"), Dep: ref.MustCell("B2")}, // different shape
		{Prec: ref.MustRange("A3"), Dep: ref.MustCell("B3")},    // resumes relative shape
	}
	wb := Build(deps)
	if wb.NumMasters() != 3 {
		t.Fatalf("masters = %d, want 3", wb.NumMasters())
	}
}

func TestFixedReferencesDedupToo(t *testing.T) {
	var deps []core.Dependency
	for row := 1; row <= 10; row++ {
		deps = append(deps, core.Dependency{
			Prec: ref.MustRange("Z1"), Dep: ref.Ref{Col: 2, Row: row},
			HeadFixed: true, TailFixed: true,
		})
	}
	wb := Build(deps)
	if wb.NumMasters() != 1 {
		t.Fatalf("masters = %d, want 1", wb.NumMasters())
	}
	got := cellsOf(wb.FindDependents(ref.MustRange("Z1")))
	if len(got) != 10 {
		t.Fatalf("dependents = %d", len(got))
	}
}

func TestAgreesWithNoComp(t *testing.T) {
	s := workload.GenerateSheet("x", 80, 0.1, rand.New(rand.NewSource(4)))
	deps := s.MustDependencies()
	wb := Build(deps)
	nc := nocomp.Build(deps)
	rng := rand.New(rand.NewSource(5))
	for q := 0; q < 6; q++ {
		r := ref.CellRange(ref.Ref{Col: 1 + rng.Intn(4), Row: 1 + rng.Intn(60)})
		a := cellsOf(wb.FindDependents(r))
		b := cellsOf(nc.FindDependents(r))
		if len(a) != len(b) {
			t.Fatalf("query %v: excelsim %d vs nocomp %d", r, len(a), len(b))
		}
		for c := range b {
			if !a[c] {
				t.Fatalf("query %v: excelsim missing %v", r, c)
			}
		}
	}
}
