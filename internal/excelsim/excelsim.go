// Package excelsim models the dependents-finding behaviour the paper
// hypothesises for Microsoft Excel in Sec. VI-E. Excel deduplicates
// identical (autofill-equivalent) formulae, storing duplicates as pointers
// to the first formula [CellFormula docs], but does not keep a compressed
// reverse dependency index. Finding dependents therefore pays, per query:
//
//   - decompression: materialising each cell's references by shifting its
//     master formula's references to the cell's position, and
//   - a forward scan: testing every formula cell's references against the
//     frontier, iterated to a fixpoint (a semi-naive BFS without a reverse
//     index).
//
// This reproduces the Fig. 16 shape: slower than NoComp (which at least has
// the reverse R-tree) and orders of magnitude slower than TACO.
package excelsim

import (
	"taco/internal/core"
	"taco/internal/ref"
	"taco/internal/rtree"
)

// cellFormula is the deduplicated storage for one formula cell: a pointer to
// the master reference list plus this cell's offset from the master.
type cellFormula struct {
	master *masterFormula
	dCol   int
	dRow   int
}

// masterFormula is the first formula of a duplicate group; refs are stored
// relative to the master's own cell.
type masterFormula struct {
	at   ref.Ref
	refs []relRef
}

// relRef is one reference of the master formula, with fixed corners kept
// absolute and relative corners kept as offsets — the data needed to rebuild
// the reference at any shifted position.
type relRef struct {
	headFixed, tailFixed bool
	headAbs, tailAbs     ref.Ref
	headOff, tailOff     ref.Offset
}

// Workbook is the deduplicated formula store.
type Workbook struct {
	cells map[ref.Ref]cellFormula
}

// Build ingests a dependency list, grouping the references of each formula
// cell and deduplicating autofill-equivalent column neighbours into shared
// masters.
func Build(deps []core.Dependency) *Workbook {
	// Group references per formula cell, preserving order.
	type group struct {
		at   ref.Ref
		deps []core.Dependency
	}
	order := map[ref.Ref]int{}
	var groups []group
	for _, d := range deps {
		i, ok := order[d.Dep]
		if !ok {
			i = len(groups)
			order[d.Dep] = i
			groups = append(groups, group{at: d.Dep})
		}
		groups[i].deps = append(groups[i].deps, d)
	}
	wb := &Workbook{cells: make(map[ref.Ref]cellFormula, len(groups))}
	// Dedup: a cell shares the master of the cell directly above when their
	// reference lists are autofill-equivalent.
	for _, g := range groups {
		above := ref.Ref{Col: g.at.Col, Row: g.at.Row - 1}
		if cf, ok := wb.cells[above]; ok {
			m := cf.master
			if sameShape(m, g.at, g.deps) {
				wb.cells[g.at] = cellFormula{master: m, dCol: g.at.Col - m.at.Col, dRow: g.at.Row - m.at.Row}
				continue
			}
		}
		m := &masterFormula{at: g.at}
		for _, d := range g.deps {
			rr := relRef{headFixed: d.HeadFixed, tailFixed: d.TailFixed}
			if d.HeadFixed {
				rr.headAbs = d.Prec.Head
			} else {
				rr.headOff = d.Prec.Head.Sub(g.at)
			}
			if d.TailFixed {
				rr.tailAbs = d.Prec.Tail
			} else {
				rr.tailOff = d.Prec.Tail.Sub(g.at)
			}
			m.refs = append(m.refs, rr)
		}
		wb.cells[g.at] = cellFormula{master: m}
	}
	return wb
}

// sameShape reports whether the references of the cell at `at` equal the
// master's references shifted to that cell.
func sameShape(m *masterFormula, at ref.Ref, deps []core.Dependency) bool {
	if len(m.refs) != len(deps) {
		return false
	}
	dCol, dRow := at.Col-m.at.Col, at.Row-m.at.Row
	for i, rr := range m.refs {
		want := materialize(rr, m.at, dCol, dRow)
		d := deps[i]
		if want != d.Prec || rr.headFixed != d.HeadFixed || rr.tailFixed != d.TailFixed {
			return false
		}
	}
	return true
}

// materialize rebuilds a reference at the master's position shifted by
// (dCol, dRow) — the per-query decompression step.
func materialize(rr relRef, masterAt ref.Ref, dCol, dRow int) ref.Range {
	at := ref.Ref{Col: masterAt.Col + dCol, Row: masterAt.Row + dRow}
	var h, t ref.Ref
	if rr.headFixed {
		h = rr.headAbs
	} else {
		h = at.Add(rr.headOff)
	}
	if rr.tailFixed {
		t = rr.tailAbs
	} else {
		t = at.Add(rr.tailOff)
	}
	return ref.RangeOf(h, t)
}

// NumCells returns the number of formula cells stored.
func (wb *Workbook) NumCells() int { return len(wb.cells) }

// NumMasters returns the number of distinct master formulae after dedup.
func (wb *Workbook) NumMasters() int {
	seen := map[*masterFormula]bool{}
	for _, cf := range wb.cells {
		seen[cf.master] = true
	}
	return len(seen)
}

// FindDependents returns the transitive dependent cells of r by repeated
// forward scans over all formula cells, decompressing each cell's references
// on every pass.
func (wb *Workbook) FindDependents(r ref.Range) []ref.Range {
	frontier := rtree.New[struct{}]()
	frontier.Insert(r, struct{}{})
	inResult := map[ref.Ref]bool{}
	var out []ref.Range
	for changed := true; changed; {
		changed = false
		for at, cf := range wb.cells {
			if inResult[at] {
				continue
			}
			for _, rr := range cf.master.refs {
				prec := materialize(rr, cf.master.at, cf.dCol, cf.dRow)
				if frontier.Any(prec) {
					inResult[at] = true
					frontier.Insert(ref.CellRange(at), struct{}{})
					out = append(out, ref.CellRange(at))
					changed = true
					break
				}
			}
		}
	}
	return out
}
