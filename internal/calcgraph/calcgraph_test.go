package calcgraph

import (
	"math/rand"
	"testing"

	"taco/internal/core"
	"taco/internal/nocomp"
	"taco/internal/ref"
)

func dep(prec, cell string) core.Dependency {
	return core.Dependency{Prec: ref.MustRange(prec), Dep: ref.MustCell(cell)}
}

func cellsOf(rs []ref.Range) map[ref.Ref]bool {
	out := map[ref.Ref]bool{}
	for _, g := range rs {
		g.Cells(func(c ref.Ref) bool {
			out[c] = true
			return true
		})
	}
	return out
}

func TestBasicTraversal(t *testing.T) {
	g := Build([]core.Dependency{
		dep("A1:A3", "B1"), dep("B1", "C1"), dep("A2", "B2"),
	})
	got := cellsOf(g.FindDependents(ref.MustRange("A2")))
	for _, c := range []string{"B1", "B2", "C1"} {
		if !got[ref.MustCell(c)] {
			t.Errorf("missing %s", c)
		}
	}
	if len(got) != 3 {
		t.Fatalf("dependents = %v", got)
	}
}

func TestLargeRangeSpansManyContainers(t *testing.T) {
	// A precedent spanning thousands of rows registers in many blocks and is
	// still found from any of them.
	g := Build([]core.Dependency{dep("A1:A5000", "B1")})
	for _, q := range []string{"A1", "A2500", "A5000"} {
		got := g.FindDependents(ref.MustRange(q))
		if len(got) != 1 || got[0] != ref.MustRange("B1") {
			t.Fatalf("query %s = %v", q, got)
		}
	}
}

func TestClear(t *testing.T) {
	g := Build([]core.Dependency{dep("A1", "B1"), dep("B1", "C1")})
	g.Clear(ref.MustRange("B1"))
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if got := g.FindDependents(ref.MustRange("A1")); len(got) != 0 {
		t.Fatalf("dependents = %v", got)
	}
}

func TestAgreesWithNoComp(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var deps []core.Dependency
	for col := 2; col <= 5; col++ {
		for row := 1; row <= 300; row++ {
			if rng.Intn(6) == 0 {
				continue
			}
			src := 1 + rng.Intn(col-1)
			deps = append(deps, core.Dependency{
				Prec: ref.RangeOf(ref.Ref{Col: src, Row: row}, ref.Ref{Col: src, Row: row + rng.Intn(4)}),
				Dep:  ref.Ref{Col: col, Row: row},
			})
		}
	}
	cg := Build(deps)
	nc := nocomp.Build(deps)
	for q := 0; q < 10; q++ {
		r := ref.CellRange(ref.Ref{Col: 1 + rng.Intn(5), Row: 1 + rng.Intn(300)})
		a := cellsOf(cg.FindDependents(r))
		b := cellsOf(nc.FindDependents(r))
		if len(a) != len(b) {
			t.Fatalf("query %v: calc %d vs nocomp %d", r, len(a), len(b))
		}
		for c := range b {
			if !a[c] {
				t.Fatalf("query %v: calc missing %v", r, c)
			}
		}
	}
}
