// Package calcgraph implements NoComp-Calc, the baseline of the paper's
// Sec. VI-E derived from OpenOffice Calc's formula-dependency design. Like
// NoComp it stores one edge per dependency without compression; unlike
// NoComp it finds overlapping vertices not with an R-tree but with
// pre-partitioned *containers*: the sheet space is divided into fixed
// blocks, each range is registered in every block it intersects, and a query
// scans the blocks it touches.
//
// Containers are cheap to maintain but degrade on large ranges (a running
// total's precedent registers in thousands of blocks) — the behaviour that
// makes NoComp-Calc the slowest finder in Fig. 16.
package calcgraph

import (
	"taco/internal/core"
	"taco/internal/ref"
)

// Block geometry: full-width bands of blockRows rows per column group.
const (
	blockRows = 128
	blockCols = 8
)

type blockKey struct {
	colBand int
	rowBand int
}

func blocksOf(r ref.Range) []blockKey {
	var out []blockKey
	for cb := (r.Head.Col - 1) / blockCols; cb <= (r.Tail.Col-1)/blockCols; cb++ {
		for rb := (r.Head.Row - 1) / blockRows; rb <= (r.Tail.Row-1)/blockRows; rb++ {
			out = append(out, blockKey{cb, rb})
		}
	}
	return out
}

// Edge is one uncompressed dependency edge.
type Edge struct {
	Prec ref.Range
	Dep  ref.Ref
}

// Graph is the container-partitioned uncompressed formula graph.
type Graph struct {
	edges      map[*Edge]struct{}
	precBlocks map[blockKey][]*Edge
	depBlocks  map[blockKey][]*Edge
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		edges:      map[*Edge]struct{}{},
		precBlocks: map[blockKey][]*Edge{},
		depBlocks:  map[blockKey][]*Edge{},
	}
}

// Build loads a dependency list.
func Build(deps []core.Dependency) *Graph {
	g := NewGraph()
	for _, d := range deps {
		g.AddDependency(d)
	}
	return g
}

// AddDependency registers one dependency in every container its ranges
// intersect.
func (g *Graph) AddDependency(d core.Dependency) {
	e := &Edge{Prec: d.Prec, Dep: d.Dep}
	g.edges[e] = struct{}{}
	for _, b := range blocksOf(e.Prec) {
		g.precBlocks[b] = append(g.precBlocks[b], e)
	}
	for _, b := range blocksOf(ref.CellRange(e.Dep)) {
		g.depBlocks[b] = append(g.depBlocks[b], e)
	}
}

// NumEdges returns the number of dependencies stored.
func (g *Graph) NumEdges() int { return len(g.edges) }

// FindDependents returns the transitive dependent cells of r.
func (g *Graph) FindDependents(r ref.Range) []ref.Range {
	visited := map[ref.Ref]bool{}
	var out []ref.Range
	queue := []ref.Range{r}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		seenEdge := map[*Edge]bool{}
		for _, b := range blocksOf(cur) {
			for _, e := range g.precBlocks[b] {
				if seenEdge[e] || !e.Prec.Overlaps(cur) {
					continue
				}
				seenEdge[e] = true
				if !visited[e.Dep] {
					visited[e.Dep] = true
					c := ref.CellRange(e.Dep)
					out = append(out, c)
					queue = append(queue, c)
				}
			}
		}
	}
	return out
}

// Clear removes every dependency whose formula cell lies in s.
func (g *Graph) Clear(s ref.Range) {
	var doomed []*Edge
	seen := map[*Edge]bool{}
	for _, b := range blocksOf(s) {
		for _, e := range g.depBlocks[b] {
			if !seen[e] && s.Contains(e.Dep) {
				seen[e] = true
				doomed = append(doomed, e)
			}
		}
	}
	for _, e := range doomed {
		delete(g.edges, e)
		for _, b := range blocksOf(e.Prec) {
			g.precBlocks[b] = removeEdge(g.precBlocks[b], e)
		}
		for _, b := range blocksOf(ref.CellRange(e.Dep)) {
			g.depBlocks[b] = removeEdge(g.depBlocks[b], e)
		}
	}
}

func removeEdge(list []*Edge, e *Edge) []*Edge {
	kept := list[:0]
	for _, x := range list {
		if x != e {
			kept = append(kept, x)
		}
	}
	return kept
}
