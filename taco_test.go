package taco_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"taco"
)

func TestQuickStartFlow(t *testing.T) {
	g := taco.NewGraph(taco.DefaultOptions())
	for _, d := range []taco.Dependency{
		{Prec: taco.MustRange("A1:A3"), Dep: taco.MustCell("B1")},
		{Prec: taco.MustRange("A2:A4"), Dep: taco.MustCell("B2")},
		{Prec: taco.MustRange("A3:A5"), Dep: taco.MustCell("B3")},
	} {
		g.AddDependency(d)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want one RR run", g.NumEdges())
	}
	deps := g.FindDependents(taco.MustRange("A3"))
	if taco.CountCells(deps) != 3 {
		t.Fatalf("dependents = %v", deps)
	}
}

func TestSheetToGraph(t *testing.T) {
	s := taco.NewSheet("demo")
	s.SetValue(taco.MustCell("A1"), 1)
	s.SetValue(taco.MustCell("A2"), 2)
	s.SetFormula(taco.MustCell("B1"), "A1*2")
	s.SetFormula(taco.MustCell("B2"), "A2*2")
	g, err := taco.SheetGraph(s, taco.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 || g.NumDependencies() != 2 {
		t.Fatalf("graph = %d edges, %d deps", g.NumEdges(), g.NumDependencies())
	}
}

func TestXLSXRoundTripThroughPublicAPI(t *testing.T) {
	s := taco.NewSheet("book")
	s.SetValue(taco.MustCell("A1"), 10)
	s.SetFormula(taco.MustCell("B1"), "A1+5")
	path := filepath.Join(t.TempDir(), "x.xlsx")
	if err := taco.WriteXLSX(path, []*taco.Sheet{s}, true); err != nil {
		t.Fatal(err)
	}
	sheets, err := taco.ReadXLSX(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(sheets) != 1 || sheets[0].Cells[taco.MustCell("B1")].Formula != "A1+5" {
		t.Fatalf("sheets = %+v", sheets)
	}
}

func TestEngineThroughPublicAPI(t *testing.T) {
	e := taco.NewEngine()
	e.SetValue(taco.MustCell("A1"), taco.Num(2))
	if _, err := e.SetFormula(taco.MustCell("B1"), "A1*10"); err != nil {
		t.Fatal(err)
	}
	e.RecalculateAll() // reads are side-effect-free; drain explicitly
	if v := e.Value(taco.MustCell("B1")); v.Num != 20 {
		t.Fatalf("B1 = %v", v)
	}
	dirty := e.SetValue(taco.MustCell("A1"), taco.Num(3))
	if taco.CountCells(dirty) != 1 {
		t.Fatalf("dirty = %v", dirty)
	}
}

func TestExtractReferences(t *testing.T) {
	deps, err := taco.ExtractReferences("=SUM($B$1:B4)+C2", taco.MustCell("D4"))
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) != 2 {
		t.Fatalf("deps = %v", deps)
	}
	if !deps[0].HeadFixed || deps[0].TailFixed {
		t.Fatalf("cue flags = %+v", deps[0])
	}
	if deps[1].Prec != taco.MustRange("C2") || deps[1].Dep != taco.MustCell("D4") {
		t.Fatalf("deps[1] = %+v", deps[1])
	}
	if _, err := taco.ExtractReferences("=SUM(", taco.MustCell("A1")); err == nil {
		t.Fatal("want parse error")
	}
}

func TestParseHelpers(t *testing.T) {
	if _, err := taco.ParseCell("B2"); err != nil {
		t.Fatal(err)
	}
	if _, err := taco.ParseRange("A1:B2"); err != nil {
		t.Fatal(err)
	}
	if _, err := taco.ParseCell("!!"); err == nil {
		t.Fatal("want error")
	}
	if taco.MustRange("A1:B2").Size() != 4 {
		t.Fatal("size")
	}
}

func TestBulkBuildAndSnapshotThroughPublicAPI(t *testing.T) {
	var deps []taco.Dependency
	for row := 1; row <= 30; row++ {
		deps = append(deps, taco.Dependency{
			Prec: taco.Range{Head: taco.Ref{Col: 1, Row: row}, Tail: taco.Ref{Col: 1, Row: row}},
			Dep:  taco.Ref{Col: 2, Row: row},
		})
	}
	g := taco.BuildGraphBulk(deps, taco.DefaultOptions())
	if g.NumEdges() != 1 {
		t.Fatalf("bulk edges = %d", g.NumEdges())
	}
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := taco.ReadGraphSnapshot(&buf, taco.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumDependencies() != 30 {
		t.Fatalf("loaded deps = %d", loaded.NumDependencies())
	}
}

func TestOpenWorkbook(t *testing.T) {
	a := taco.NewSheet("data")
	a.SetValue(taco.MustCell("A1"), 3)
	a.SetFormula(taco.MustCell("B1"), "A1*7")
	path := filepath.Join(t.TempDir(), "book.xlsx")
	if err := taco.WriteXLSX(path, []*taco.Sheet{a}, true); err != nil {
		t.Fatal(err)
	}
	b, err := taco.OpenWorkbook(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Sheet("data").Value(taco.MustCell("B1")); got.Num != 21 {
		t.Fatalf("B1 = %v", got)
	}
}

func TestSafeGraphThroughPublicAPI(t *testing.T) {
	s := taco.NewSafeGraph(taco.DefaultOptions())
	s.AddDependency(taco.Dependency{Prec: taco.MustRange("A1"), Dep: taco.MustCell("B1")})
	if got := s.FindDependents(taco.MustRange("A1")); taco.CountCells(got) != 1 {
		t.Fatalf("dependents = %v", got)
	}
}

func TestInRowOptionsExposed(t *testing.T) {
	opts := taco.InRowOptions()
	g := taco.NewGraph(opts)
	g.AddDependency(taco.Dependency{Prec: taco.MustRange("A1"), Dep: taco.MustCell("B1")})
	g.AddDependency(taco.Dependency{Prec: taco.MustRange("A2"), Dep: taco.MustCell("B2")})
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}
