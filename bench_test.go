// Benchmarks regenerating the paper's evaluation artefacts. One benchmark
// per table/figure (driving the same harness as cmd/tacobench at a reduced
// scale so `go test -bench` stays tractable), plus micro-benchmarks on the
// primitive operations and ablations of the design choices DESIGN.md calls
// out (RR-Chain, dollar-sign cues).
//
// Absolute numbers are host-dependent; the shapes — TACO vs NoComp ratios,
// DNF markers, pattern ordering — are the reproduction targets and are
// asserted in internal/experiments tests.
package taco_test

import (
	"math/rand"
	"testing"
	"time"

	"taco"
	"taco/internal/antifreeze"
	"taco/internal/calcgraph"
	"taco/internal/core"
	"taco/internal/excelsim"
	"taco/internal/experiments"
	"taco/internal/graphdb"
	"taco/internal/nocomp"
	"taco/internal/workload"
)

func benchConfig() experiments.Config {
	return experiments.Config{Scale: 0.08, Timeout: 2 * time.Second, Out: nil}
}

// --- Figure/table harness benchmarks -----------------------------------------

func BenchmarkFig1Corpus(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiments.RunFig1(cfg)
	}
}

func BenchmarkTable2Compression(b *testing.B) {
	// Also produces Tables III and IV (same measurement pass).
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.RunSizes(cfg)
		full := res["Github"]["TACO-Full"]
		nc := res["Github"]["NoComp"]
		b.ReportMetric(float64(full.Edges)/float64(nc.Edges)*100, "%edges-remaining")
	}
}

func BenchmarkTable5Patterns(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable5(cfg)
		b.ReportMetric(float64(res.Patterns["Github"][core.RR].Total), "RR-edges-reduced")
	}
}

func BenchmarkFig10FindDependents(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig10(cfg)
		b.ReportMetric(res.MaxDependents["Github"].MaxSpeedup(), "max-speedup-x")
	}
}

func BenchmarkFig11Build(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiments.RunFig11(cfg)
	}
}

func BenchmarkFig12Modify(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiments.RunFig12(cfg)
	}
}

func BenchmarkFig13BuildBaselines(b *testing.B) {
	// Runs the Figs. 13-15 suite (build + find + modify for TACO, NoComp,
	// GraphDB-sim and Antifreeze on the top-10 sheets).
	cfg := benchConfig()
	cfg.Scale = 0.05
	for i := 0; i < b.N; i++ {
		experiments.RunFig13to15(cfg)
	}
}

func BenchmarkFig16ExcelCalc(b *testing.B) {
	cfg := benchConfig()
	cfg.Scale = 0.05
	for i := 0; i < b.N; i++ {
		experiments.RunFig16(cfg)
	}
}

func BenchmarkCEMGreedyVsExact(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiments.RunCEM(cfg)
	}
}

// --- Micro-benchmarks on one representative sheet -----------------------------

// benchSheet builds a deterministic mid-size sheet shared by the micro
// benchmarks.
func benchSheet() []core.Dependency {
	s := workload.GenerateSheet("bench", 1500, 0.08, rand.New(rand.NewSource(42)))
	return s.MustDependencies()
}

func BenchmarkBuildTACO(b *testing.B) {
	deps := benchSheet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Build(deps, core.DefaultOptions())
	}
}

func BenchmarkBuildNoComp(b *testing.B) {
	deps := benchSheet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nocomp.Build(deps)
	}
}

func BenchmarkBuildGraphDB(b *testing.B) {
	deps := benchSheet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graphdb.Build(deps)
	}
}

func BenchmarkBuildCalc(b *testing.B) {
	deps := benchSheet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		calcgraph.Build(deps)
	}
}

func BenchmarkBuildExcelSim(b *testing.B) {
	deps := benchSheet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		excelsim.Build(deps)
	}
}

func BenchmarkBuildAntifreezeSmall(b *testing.B) {
	// Antifreeze's closure-per-cell build is quadratic; bench on a small
	// slice to keep it tractable (its DNF behaviour is the Fig. 13 result).
	s := workload.GenerateSheet("af", 120, 0.08, rand.New(rand.NewSource(42)))
	deps := s.MustDependencies()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		antifreeze.Build(deps, 0, nil)
	}
}

func findSeed(deps []core.Dependency) taco.Range {
	m := workload.Metrics(deps)
	return taco.Range{Head: m.MaxDependentsCell, Tail: m.MaxDependentsCell}
}

func BenchmarkFindDependentsTACO(b *testing.B) {
	deps := benchSheet()
	g := core.Build(deps, core.DefaultOptions())
	seed := findSeed(deps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.FindDependents(seed)
	}
}

func BenchmarkFindDependentsNoComp(b *testing.B) {
	deps := benchSheet()
	g := nocomp.Build(deps)
	seed := findSeed(deps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.FindDependents(seed)
	}
}

func BenchmarkFindPrecedentsTACO(b *testing.B) {
	deps := benchSheet()
	g := core.Build(deps, core.DefaultOptions())
	seed := taco.MustRange("E750")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.FindPrecedents(seed)
	}
}

// The modify benchmarks clear one column and reinsert its dependencies each
// iteration, so a single prebuilt graph serves the whole run (rebuilding per
// iteration under StopTimer makes wall-clock explode). The timed op is
// clear+reinsert — maintenance round-trip cost.
func BenchmarkModifyTACO(b *testing.B) {
	deps := benchSheet()
	clear := taco.MustRange("C1:C1000")
	var cleared []core.Dependency
	for _, d := range deps {
		if clear.Contains(d.Dep) {
			cleared = append(cleared, d)
		}
	}
	g := core.Build(deps, core.DefaultOptions())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Clear(clear)
		for _, d := range cleared {
			g.AddDependency(d)
		}
	}
}

func BenchmarkModifyNoComp(b *testing.B) {
	deps := benchSheet()
	clear := taco.MustRange("C1:C1000")
	var cleared []core.Dependency
	for _, d := range deps {
		if clear.Contains(d.Dep) {
			cleared = append(cleared, d)
		}
	}
	g := nocomp.Build(deps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Clear(clear)
		for _, d := range cleared {
			g.AddDependency(d)
		}
	}
}

// --- Ablations -----------------------------------------------------------------

// BenchmarkAblationChainPattern isolates RR-Chain: finding dependents from
// the head of a long chain with the pattern enabled vs compressed as plain
// RR (the repeated-edge-access pathology of Sec. V).
func BenchmarkAblationChainPattern(b *testing.B) {
	var deps []core.Dependency
	for row := 2; row <= 8000; row++ {
		deps = append(deps, core.Dependency{
			Prec: taco.Range{Head: taco.Ref{Col: 1, Row: row - 1}, Tail: taco.Ref{Col: 1, Row: row - 1}},
			Dep:  taco.Ref{Col: 1, Row: row},
		})
	}
	seed := taco.MustRange("A1")
	b.Run("with-RRChain", func(b *testing.B) {
		g := core.Build(deps, core.DefaultOptions())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.FindDependents(seed)
		}
	})
	b.Run("RR-only", func(b *testing.B) {
		g := core.Build(deps, core.Options{Patterns: []core.PatternType{core.RR, core.RF, core.FR, core.FF}, UseDollarCues: true})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.FindDependents(seed)
		}
	})
}

// BenchmarkAblationDollarCues measures build time and compression quality
// with and without the `$` heuristic.
func BenchmarkAblationDollarCues(b *testing.B) {
	deps := benchSheet()
	for _, cfg := range []struct {
		name string
		opts core.Options
	}{
		{"with-cues", core.DefaultOptions()},
		{"no-cues", core.Options{UseDollarCues: false}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var edges int
			for i := 0; i < b.N; i++ {
				edges = core.Build(deps, cfg.opts).NumEdges()
			}
			b.ReportMetric(float64(edges), "edges")
		})
	}
}

// BenchmarkAblationPatternSet grows the enabled pattern set to show each
// pattern's marginal contribution to the compressed size.
func BenchmarkAblationPatternSet(b *testing.B) {
	deps := benchSheet()
	sets := []struct {
		name     string
		patterns []core.PatternType
	}{
		{"RR", []core.PatternType{core.RR}},
		{"RR+FF", []core.PatternType{core.RR, core.FF}},
		{"RR+FF+FR+RF", []core.PatternType{core.RR, core.FF, core.FR, core.RF}},
		{"all", nil},
	}
	for _, set := range sets {
		b.Run(set.name, func(b *testing.B) {
			var edges int
			for i := 0; i < b.N; i++ {
				edges = core.Build(deps, core.Options{Patterns: set.patterns, UseDollarCues: true}).NumEdges()
			}
			b.ReportMetric(float64(edges), "edges")
		})
	}
}
